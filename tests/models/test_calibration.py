"""Tests for probability calibration."""

import numpy as np
import pytest

from repro.models.calibration import (
    TemperatureScaler,
    expected_calibration_error,
    reliability_curve,
)


def miscalibrated_data(n=20000, true_t=3.0, seed=0):
    """Logits whose calibrated temperature is ``true_t``."""
    rng = np.random.default_rng(seed)
    calibrated_logit = rng.normal(0.0, 2.0, n)
    p_true = 1.0 / (1.0 + np.exp(-calibrated_logit))
    labels = (rng.uniform(size=n) < p_true).astype(float)
    overconfident_logit = calibrated_logit * true_t
    return overconfident_logit, labels


class TestReliabilityCurve:
    def test_perfectly_calibrated(self):
        rng = np.random.default_rng(1)
        p = rng.uniform(size=50000)
        y = rng.uniform(size=50000) < p
        centers, observed, counts = reliability_curve(p, y, n_bins=10)
        valid = counts > 100
        assert np.abs(observed[valid] - centers[valid]).max() < 0.05

    def test_empty_bins_nan(self):
        p = np.array([0.05, 0.06])
        y = np.array([0, 1])
        _, observed, counts = reliability_curve(p, y, n_bins=10)
        assert counts[0] == 2
        assert np.isnan(observed[5])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            reliability_curve(np.zeros(3), np.zeros(2))


class TestECE:
    def test_zero_for_calibrated(self):
        rng = np.random.default_rng(2)
        p = rng.uniform(size=100000)
        y = rng.uniform(size=100000) < p
        assert expected_calibration_error(p, y) < 0.01

    def test_large_for_overconfident(self):
        logits, labels = miscalibrated_data()
        p = 1.0 / (1.0 + np.exp(-logits))
        assert expected_calibration_error(p, labels) > 0.05


class TestTemperatureScaler:
    def test_recovers_temperature(self):
        logits, labels = miscalibrated_data(true_t=3.0)
        scaler = TemperatureScaler().fit(logits, labels)
        assert scaler.temperature == pytest.approx(3.0, rel=0.15)

    def test_improves_ece(self):
        logits, labels = miscalibrated_data(true_t=4.0, seed=3)
        raw_p = 1.0 / (1.0 + np.exp(-logits))
        scaler = TemperatureScaler().fit(logits, labels)
        cal_p = scaler.transform(logits)
        assert expected_calibration_error(cal_p, labels) < (
            expected_calibration_error(raw_p, labels) / 2.0
        )

    def test_identity_when_calibrated(self):
        logits, labels = miscalibrated_data(true_t=1.0, seed=4)
        scaler = TemperatureScaler().fit(logits, labels)
        assert scaler.temperature == pytest.approx(1.0, abs=0.15)

    def test_transform_stable_at_extremes(self):
        scaler = TemperatureScaler(temperature=0.1)
        out = scaler.transform(np.array([-500.0, 0.0, 500.0]))
        assert np.all(np.isfinite(out))
        assert out[1] == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            TemperatureScaler().fit(np.zeros(3), np.zeros(4))

    def test_on_real_background_net(self, tiny_models, training_data):
        """Temperature scaling never hurts NLL on the fit data."""
        from repro.sources.grb import LABEL_BACKGROUND

        feats = training_data.features
        labels = (training_data.labels == LABEL_BACKGROUND).astype(float)
        logits = tiny_models.background_net.predict_logit(feats)
        scaler = TemperatureScaler().fit(logits, labels)
        nll_raw = TemperatureScaler._nll(logits, labels, 1.0)
        nll_cal = TemperatureScaler._nll(logits, labels, scaler.temperature)
        assert nll_cal <= nll_raw + 1e-9
