"""Tests for per-polar-bin threshold selection."""

import numpy as np
import pytest

from repro.models.thresholds import PolarBinnedThresholds


class TestBinning:
    def test_default_ten_degree_bins(self):
        t = PolarBinnedThresholds()
        assert t.num_bins == 9

    def test_bin_of(self):
        t = PolarBinnedThresholds()
        assert t.bin_of(np.array([5.0]))[0] == 0
        assert t.bin_of(np.array([15.0]))[0] == 1
        assert t.bin_of(np.array([85.0]))[0] == 8

    def test_out_of_range_clipped(self):
        t = PolarBinnedThresholds()
        assert t.bin_of(np.array([-5.0]))[0] == 0
        assert t.bin_of(np.array([120.0]))[0] == 8


class TestFit:
    def test_separating_threshold_found(self):
        rng = np.random.default_rng(0)
        n = 2000
        y = rng.integers(0, 2, n).astype(bool)
        # Background scores near 0.8, GRB near 0.2.
        p = np.where(y, 0.8, 0.2) + rng.normal(0, 0.05, n)
        polar = rng.uniform(0, 90, n)
        t = PolarBinnedThresholds().fit(p, y, polar)
        calls = t.classify(p, polar)
        assert (calls == y).mean() > 0.98

    def test_unfitted_raises(self):
        t = PolarBinnedThresholds()
        with pytest.raises(RuntimeError):
            t.threshold_for(np.array([10.0]))

    def test_sparse_bins_inherit_global(self):
        rng = np.random.default_rng(1)
        n = 500
        y = rng.integers(0, 2, n).astype(bool)
        p = np.where(y, 0.9, 0.1)
        polar = rng.uniform(0, 10, n)  # everything in bin 0
        t = PolarBinnedThresholds().fit(p, y, polar)
        # Bins 1..8 had no data; they share the global threshold.
        assert np.all(t.thresholds[1:] == t.thresholds[1])

    def test_fn_weight_lowers_miss_rate(self):
        """Heavier FN cost pushes thresholds up, keeping more GRB rings."""
        rng = np.random.default_rng(2)
        n = 4000
        y = rng.uniform(size=n) < 0.5
        p = np.clip(np.where(y, 0.6, 0.4) + rng.normal(0, 0.2, n), 0, 1)
        polar = rng.uniform(0, 90, n)
        t_low = PolarBinnedThresholds().fit(p, y, polar, fn_weight=0.2)
        t_high = PolarBinnedThresholds().fit(p, y, polar, fn_weight=5.0)
        fn_low = (~t_low.classify(p, polar) & y).sum()
        fn_high = (~t_high.classify(p, polar) & y).sum()
        assert fn_high <= fn_low

    def test_per_bin_adaptivity(self):
        """Bins with different score distributions get different thresholds."""
        rng = np.random.default_rng(3)
        n = 6000
        polar = rng.uniform(0, 90, n)
        y = rng.integers(0, 2, n).astype(bool)
        # Score separation shifts with angle.
        shift = polar / 300.0
        p = np.clip(np.where(y, 0.6 + shift, 0.3 + shift), 0, 1)
        t = PolarBinnedThresholds().fit(p, y, polar)
        assert t.thresholds.max() - t.thresholds.min() > 0.05
