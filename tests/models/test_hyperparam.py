"""Tests for the random-search tuning harness."""

import numpy as np
import pytest

from repro.models.hyperparam import HyperParams, random_search, sample_config


class TestSampleConfig:
    def test_classification_space(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            cfg = sample_config(rng, "classification")
            assert cfg.batch_size in (256, 1024, 4096)
            assert 10**-4 <= cfg.learning_rate <= 10**-1.5
            assert 2 <= len(cfg.hidden_widths) <= 4
            assert max(cfg.hidden_widths) <= 256

    def test_regression_space_small_widths(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            cfg = sample_config(rng, "regression")
            assert max(cfg.hidden_widths) <= 32

    def test_invalid_task(self):
        with pytest.raises(ValueError):
            sample_config(np.random.default_rng(2), "clustering")


class TestRandomSearch:
    def test_returns_sorted_results(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(400, 6))
        y = (x[:, 0] > 0).astype(float)
        results = random_search(
            x, y, rng, task="classification", n_trials=3, max_epochs=3
        )
        assert len(results) == 3
        losses = [r.val_loss for r in results]
        assert losses == sorted(losses)
        assert all(np.isfinite(l) for l in losses)

    def test_regression_task(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(400, 6))
        y = x[:, 0] * 2.0
        results = random_search(
            x, y, rng, task="regression", n_trials=2, max_epochs=3
        )
        assert len(results) == 2
