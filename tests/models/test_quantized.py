"""Tests for the INT8 background classifier."""

import numpy as np
import pytest

from repro.models.background import BackgroundTrainConfig, train_background_net
from repro.models.quantized import quantize_background_net
from repro.nn.metrics import roc_auc
from tests.models.test_background import synthetic_classification


@pytest.fixture(scope="module")
def swapped_net_and_data():
    x, y, polar = synthetic_classification(n=3000, seed=11)
    cfg = BackgroundTrainConfig(
        hidden_widths=(32, 16), max_epochs=25, patience=8, swapped=True
    )
    net = train_background_net(x, y, polar, np.random.default_rng(12), cfg)
    return net, x, y, polar


class TestQuantizeBackgroundNet:
    def test_preserves_accuracy(self, swapped_net_and_data):
        net, x, y, polar = swapped_net_and_data
        q = quantize_background_net(
            net, x, y, polar, np.random.default_rng(13), qat_epochs=3
        )
        auc_fp = roc_auc(net.predict_proba(x), y)
        auc_q = roc_auc(q.predict_proba(x), y)
        assert auc_q > auc_fp - 0.05

    def test_interface_parity(self, swapped_net_and_data):
        net, x, y, polar = swapped_net_and_data
        q = quantize_background_net(
            net, x, y, polar, np.random.default_rng(14), qat_epochs=2
        )
        assert q.predict_proba(x).shape == (x.shape[0],)
        calls = q.is_background(x, 30.0)
        assert calls.dtype == bool and calls.shape == (x.shape[0],)

    def test_logits_correlate_with_fp32(self, swapped_net_and_data):
        net, x, y, polar = swapped_net_and_data
        q = quantize_background_net(
            net, x, y, polar, np.random.default_rng(15), qat_epochs=2
        )
        corr = np.corrcoef(net.predict_logit(x), q.predict_logit(x))[0, 1]
        assert corr > 0.95

    def test_unswapped_model_rejected(self):
        x, y, polar = synthetic_classification(n=400, seed=16)
        cfg = BackgroundTrainConfig(
            hidden_widths=(8,), max_epochs=2, patience=2, swapped=False
        )
        net = train_background_net(x, y, polar, np.random.default_rng(17), cfg)
        with pytest.raises(ValueError):
            quantize_background_net(
                net, x, y, polar, np.random.default_rng(18), qat_epochs=1
            )

    def test_weight_storage_is_int8(self, swapped_net_and_data):
        net, x, y, polar = swapped_net_and_data
        q = quantize_background_net(
            net, x, y, polar, np.random.default_rng(19), qat_epochs=1
        )
        for layer in q.model.layers:
            assert layer.weight_q.dtype == np.int8
