"""Tests for the Fig. 10 input perturbation."""

import numpy as np
import pytest

from repro.detector.perturb import perturb_events


class TestPerturbEvents:
    def test_zero_epsilon_is_identity(self, events):
        out = perturb_events(events, 0.0, np.random.default_rng(0))
        assert out is events

    def test_negative_epsilon_raises(self, events):
        with pytest.raises(ValueError):
            perturb_events(events, -1.0, np.random.default_rng(0))

    def test_noise_scale(self, events):
        """Empirical relative deviation matches eps%."""
        eps = 10.0
        rng = np.random.default_rng(1)
        out = perturb_events(events, eps, rng)
        nonzero = np.abs(events.positions) > 1.0
        rel = (out.positions - events.positions)[nonzero] / np.abs(
            events.positions
        )[nonzero]
        assert rel.std() == pytest.approx(eps / 100.0, rel=0.1)

    def test_energies_non_negative(self, events):
        out = perturb_events(events, 50.0, np.random.default_rng(2))
        assert np.all(out.energies >= 0.0)

    def test_sigmas_unchanged(self, events):
        """The pipeline must NOT know about the perturbation."""
        out = perturb_events(events, 10.0, np.random.default_rng(3))
        assert np.array_equal(out.sigma_energy, events.sigma_energy)
        assert np.array_equal(out.sigma_position, events.sigma_position)

    def test_truth_unchanged(self, events):
        out = perturb_events(events, 10.0, np.random.default_rng(4))
        assert np.array_equal(out.true_positions, events.true_positions)
        assert np.array_equal(out.true_energies, events.true_energies)

    def test_structure_unchanged(self, events):
        out = perturb_events(events, 5.0, np.random.default_rng(5))
        assert np.array_equal(out.event_offsets, events.event_offsets)
        assert np.array_equal(out.labels, events.labels)
