"""Tests for the mechanistic SiPM model."""

import numpy as np
import pytest

from repro.detector.sipm import SiPMModel


class TestValidation:
    def test_invalid_pde(self):
        with pytest.raises(ValueError):
            SiPMModel(pde=0.0)

    def test_invalid_crosstalk(self):
        with pytest.raises(ValueError):
            SiPMModel(p_crosstalk=1.0)

    def test_invalid_microcells(self):
        with pytest.raises(ValueError):
            SiPMModel(n_microcells=0)

    def test_negative_photons_rejected(self):
        with pytest.raises(ValueError):
            SiPMModel().detect(np.array([-1.0]), np.random.default_rng(0))


class TestMoments:
    def test_mean_matches_analytic(self):
        model = SiPMModel(
            p_crosstalk=0.2, p_afterpulse=0.1, n_microcells=None,
            gain_sigma=0.0,
        )
        rng = np.random.default_rng(1)
        n_photons = np.full(200_000, 100.0)
        out = model.detect(n_photons, rng)
        assert out.mean() == pytest.approx(model.mean_avalanches(100.0), rel=0.01)

    def test_crosstalk_inflates_variance(self):
        """Relative variance exceeds Poisson by ~1/(1-p)^2."""
        rng = np.random.default_rng(2)
        n_photons = np.full(200_000, 100.0)
        clean = SiPMModel(
            p_crosstalk=0.0, p_afterpulse=0.0, n_microcells=None,
            gain_sigma=0.0,
        ).detect(n_photons, rng)
        noisy = SiPMModel(
            p_crosstalk=0.3, p_afterpulse=0.0, n_microcells=None,
            gain_sigma=0.0,
        ).detect(n_photons, rng)
        fano_clean = clean.var() / clean.mean()
        fano_noisy = noisy.var() / noisy.mean()
        expected = 1.0 / (1.0 - 0.3) ** 2
        assert fano_clean == pytest.approx(1.0, rel=0.05)
        assert fano_noisy / fano_clean == pytest.approx(expected, rel=0.1)

    def test_heavy_tail_from_crosstalk(self):
        """Crosstalk produces more >4-sigma outliers than Poisson."""
        rng = np.random.default_rng(3)
        n_photons = np.full(300_000, 50.0)

        def tail_fraction(p):
            out = SiPMModel(
                p_crosstalk=p, p_afterpulse=0.0, n_microcells=None,
                gain_sigma=0.0,
            ).detect(n_photons, rng)
            z = (out - out.mean()) / out.std()
            return (z > 4.0).mean()

        assert tail_fraction(0.3) > 1.5 * max(tail_fraction(0.0), 1e-6)


class TestSaturation:
    def test_response_compresses(self):
        model = SiPMModel(n_microcells=100, gain_sigma=0.0,
                          p_crosstalk=0.0, p_afterpulse=0.0)
        rng = np.random.default_rng(4)
        low = model.detect(np.full(20000, 10.0), rng).mean()
        high = model.detect(np.full(20000, 1000.0), rng).mean()
        # 100x the light gives far less than 100x the charge.
        assert high / low < 30.0
        assert high <= 100.0

    def test_linearity_correction_inverts_mean(self):
        model = SiPMModel(n_microcells=400, gain_sigma=0.0,
                          p_crosstalk=0.0, p_afterpulse=0.0, pde=1.0)
        rng = np.random.default_rng(5)
        true_mean = 300.0
        measured = model.detect(np.full(100_000, true_mean), rng)
        corrected = model.linearity_correction(measured)
        assert corrected.mean() == pytest.approx(true_mean, rel=0.05)

    def test_no_saturation_identity(self):
        model = SiPMModel(n_microcells=None)
        x = np.array([1.0, 50.0, 500.0])
        assert np.allclose(model.linearity_correction(x), x)


class TestDeterminism:
    def test_same_seed_same_output(self):
        model = SiPMModel()
        a = model.detect(np.full(100, 30.0), np.random.default_rng(6))
        b = model.detect(np.full(100, 30.0), np.random.default_rng(6))
        assert np.array_equal(a, b)


class TestResponseIntegration:
    def test_sipm_path_produces_events(self, geometry):
        """Digitization works end-to-end with the mechanistic SiPM model
        and still exhibits beyond-nominal error tails (the paper's
        motivating pathology, now produced by crosstalk instead of an
        ad-hoc knob)."""
        from repro.detector.response import DetectorResponse, ResponseConfig
        from repro.sources.exposure import simulate_exposure
        from repro.sources.grb import GRBSource

        cfg = ResponseConfig(
            sipm=SiPMModel(p_crosstalk=0.25, p_afterpulse=0.1),
            tail_probability=0.0,
        )
        resp = DetectorResponse(geometry, cfg)
        rng = np.random.default_rng(10)
        exp = simulate_exposure(geometry, rng, GRBSource(fluence_mev_cm2=2.0))
        events = resp.digitize(exp.transport, exp.batch, rng, min_hits=2)
        assert events.num_events > 50
        err = np.abs(events.energies - events.true_energies)
        beyond = (err > 3 * events.sigma_energy).mean()
        assert beyond > 0.02

    def test_sipm_mean_response_calibrated(self, geometry):
        """The SiPM path keeps the same MeV calibration as the Poisson
        path (no systematic energy-scale shift beyond crosstalk gain,
        which linearity_correction does not remove)."""
        from repro.detector.response import DetectorResponse, ResponseConfig

        model = SiPMModel(p_crosstalk=0.0, p_afterpulse=0.0, gain_sigma=0.0)
        resp = DetectorResponse(geometry, ResponseConfig(sipm=model))
        rng = np.random.default_rng(11)
        true_e = np.full(20000, 1.0)
        pos = np.zeros((20000, 3))
        measured, _ = resp.measure_energy(true_e, pos, rng)
        assert measured.mean() == pytest.approx(1.0, rel=0.02)
