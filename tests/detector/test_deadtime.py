"""Tests for readout deadtime models."""

import numpy as np
import pytest

from repro.detector.deadtime import DeadtimeModel


class TestLiveFraction:
    def test_zero_rate_fully_live(self):
        model = DeadtimeModel(tau_s=1e-5)
        assert model.live_fraction(0.0) == pytest.approx(1.0)

    def test_nonparalyzable_formula(self):
        model = DeadtimeModel(tau_s=1e-5, paralyzable=False)
        assert model.live_fraction(1e5) == pytest.approx(0.5)

    def test_paralyzable_formula(self):
        model = DeadtimeModel(tau_s=1e-5, paralyzable=True)
        assert model.live_fraction(1e5) == pytest.approx(np.exp(-1.0))

    def test_monotone_decreasing(self):
        model = DeadtimeModel(tau_s=1e-5)
        rates = np.geomspace(1.0, 1e7, 30)
        live = model.live_fraction(rates)
        assert np.all(np.diff(live) < 0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            DeadtimeModel().live_fraction(-1.0)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            DeadtimeModel(tau_s=0.0)


class TestRecordedRate:
    def test_nonparalyzable_saturates(self):
        model = DeadtimeModel(tau_s=1e-5, paralyzable=False)
        assert model.recorded_rate(1e8) == pytest.approx(
            model.saturation_rate(), rel=0.05
        )

    def test_paralyzable_rolls_over(self):
        """Paralyzable throughput peaks at 1/tau and then declines."""
        model = DeadtimeModel(tau_s=1e-5, paralyzable=True)
        peak = model.recorded_rate(1e5)
        beyond = model.recorded_rate(5e5)
        assert beyond < peak


class TestApply:
    def test_widely_spaced_all_recorded(self):
        model = DeadtimeModel(tau_s=1e-6)
        times = np.arange(10) * 1e-3
        assert model.apply(times).all()

    def test_burst_loses_followers(self):
        model = DeadtimeModel(tau_s=1e-3, paralyzable=False)
        times = np.array([0.0, 1e-4, 2e-4, 2e-3])
        mask = model.apply(times)
        assert mask.tolist() == [True, False, False, True]

    def test_paralyzable_extends_busy(self):
        model = DeadtimeModel(tau_s=1e-3, paralyzable=True)
        # Second arrival extends the busy window past the third.
        times = np.array([0.0, 0.9e-3, 1.5e-3])
        mask = model.apply(times)
        assert mask.tolist() == [True, False, False]
        # Non-paralyzable would have recorded the third.
        np_model = DeadtimeModel(tau_s=1e-3, paralyzable=False)
        assert np_model.apply(times).tolist() == [True, False, True]

    def test_unsorted_input_handled(self):
        model = DeadtimeModel(tau_s=1e-3)
        times = np.array([2e-3, 0.0, 1e-4])
        mask = model.apply(times)
        assert mask.tolist() == [True, True, False]

    def test_empirical_live_fraction_matches_formula(self):
        model = DeadtimeModel(tau_s=1e-5, paralyzable=False)
        rng = np.random.default_rng(0)
        rate = 2e5
        times = np.cumsum(rng.exponential(1.0 / rate, 200_000))
        recorded = model.apply(times).mean()
        assert recorded == pytest.approx(model.live_fraction(rate), rel=0.02)
