"""Tests for the detector response / digitization chain."""

import numpy as np
import pytest

from repro.detector.response import DetectorResponse, ResponseConfig
from repro.sources.background import BackgroundModel
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource


class TestGainMap:
    def test_bounded_by_amplitude(self, response):
        rng = np.random.default_rng(0)
        pts = rng.uniform(-20, 20, size=(1000, 3))
        gain = response.gain_map(pts)
        amp = response.config.nonuniformity_amplitude
        assert np.all(gain >= 1.0 - amp - 1e-12)
        assert np.all(gain <= 1.0 + amp + 1e-12)

    def test_deterministic(self, response):
        pts = np.array([[1.0, 2.0, -0.5], [3.0, -4.0, -12.0]])
        assert np.array_equal(response.gain_map(pts), response.gain_map(pts))


class TestMeasureEnergy:
    def test_resolution_scales_with_photostatistics(self, geometry):
        cfg = ResponseConfig(
            tail_probability=0.0,
            nonuniformity_amplitude=0.0,
            electronics_noise_mev=0.0,
        )
        resp = DetectorResponse(geometry, cfg)
        rng = np.random.default_rng(1)
        true_e = np.full(20000, 1.0)
        pos = np.zeros((20000, 3))
        measured, sigma = resp.measure_energy(true_e, pos, rng)
        expected_sigma = np.sqrt(1.0 / cfg.pe_per_mev)
        assert measured.std() == pytest.approx(expected_sigma, rel=0.05)
        assert np.median(sigma) == pytest.approx(expected_sigma, rel=0.05)

    def test_unbiased_without_systematics(self, geometry):
        cfg = ResponseConfig(tail_probability=0.0, nonuniformity_amplitude=0.0)
        resp = DetectorResponse(geometry, cfg)
        rng = np.random.default_rng(2)
        true_e = np.full(20000, 0.5)
        measured, _ = resp.measure_energy(true_e, np.zeros((20000, 3)), rng)
        assert measured.mean() == pytest.approx(0.5, rel=0.01)

    def test_tails_widen_true_error_beyond_nominal(self, geometry):
        """The unmodeled heavy tail produces errors the nominal sigma
        cannot account for — the paper's motivating pathology."""
        resp = DetectorResponse(geometry)
        rng = np.random.default_rng(3)
        true_e = np.full(50000, 1.0)
        pos = rng.uniform(-20, 20, size=(50000, 3))
        measured, sigma = resp.measure_energy(true_e, pos, rng)
        err = np.abs(measured - true_e)
        frac_beyond_3sigma = (err > 3 * sigma).mean()
        assert frac_beyond_3sigma > 0.05

    def test_non_negative(self, geometry):
        resp = DetectorResponse(geometry)
        rng = np.random.default_rng(4)
        measured, _ = resp.measure_energy(
            np.full(1000, 0.03), np.zeros((1000, 3)), rng
        )
        assert np.all(measured >= 0.0)


class TestMeasurePosition:
    def test_xy_on_fiber_grid(self, response):
        rng = np.random.default_rng(5)
        pts = np.stack(
            [
                rng.uniform(-15, 15, 100),
                rng.uniform(-15, 15, 100),
                np.full(100, -0.7),
            ],
            axis=1,
        )
        measured, sigma = response.measure_position(pts, rng)
        grid = response.fiber_grid
        assert np.allclose(measured[:, 0], grid.quantize(pts[:, 0]))
        assert np.allclose(measured[:, 1], grid.quantize(pts[:, 1]))
        assert np.all(sigma[:, 0] == grid.position_sigma_cm)

    def test_z_stays_in_layer(self, response, geometry):
        rng = np.random.default_rng(6)
        layer = geometry.layers[2]
        z = np.full(500, 0.5 * (layer.z_top + layer.z_bottom))
        pts = np.stack([np.zeros(500), np.zeros(500), z], axis=1)
        measured, _ = response.measure_position(pts, rng)
        assert np.all(measured[:, 2] <= layer.z_top)
        assert np.all(measured[:, 2] >= layer.z_bottom)


class TestDigitize:
    def test_event_structure_consistent(self, events):
        offsets = events.event_offsets
        assert offsets[0] == 0
        assert offsets[-1] == events.num_hits
        assert np.all(np.diff(offsets) >= 2)  # min_hits=2 fixture

    def test_truth_arrays_aligned(self, events):
        assert events.true_positions.shape == events.positions.shape
        assert events.true_energies.shape == events.energies.shape
        assert events.labels.shape[0] == events.num_events
        assert events.photon_energy.shape[0] == events.num_events

    def test_all_measured_above_threshold(self, events, response):
        assert np.all(
            events.energies >= response.config.trigger_threshold_mev
        )

    def test_select_subsets(self, events):
        mask = np.zeros(events.num_events, dtype=bool)
        mask[::3] = True
        sub = events.select(mask)
        assert sub.num_events == int(mask.sum())
        assert np.array_equal(sub.labels, events.labels[mask])
        assert np.array_equal(
            sub.hits_per_event(), events.hits_per_event()[mask]
        )

    def test_select_wrong_length_raises(self, events):
        with pytest.raises(ValueError):
            events.select(np.ones(events.num_events + 1, dtype=bool))

    def test_empty_transport(self, geometry, response):
        """A batch that misses the detector digitizes to zero events."""
        rng = np.random.default_rng(7)
        grb = GRBSource()
        batch = grb.generate(geometry, rng, n_photons=3)
        batch.origins[:] = [500.0, 500.0, 10.0]
        from repro.physics.transport import transport_photons

        transport = transport_photons(
            geometry, batch.origins, batch.directions, batch.energies, rng
        )
        ev = response.digitize(transport, batch, rng)
        assert ev.num_events == 0
        assert ev.num_hits == 0

    def test_min_hits_filter(self, exposure, response):
        rng = np.random.default_rng(8)
        ev1 = response.digitize(exposure.transport, exposure.batch, rng, min_hits=1)
        rng = np.random.default_rng(8)
        ev2 = response.digitize(exposure.transport, exposure.batch, rng, min_hits=2)
        assert ev1.num_events > ev2.num_events
        assert np.all(ev2.hits_per_event() >= 2)

    def test_merge_radius_merges_same_layer_hits(self, geometry):
        """Two same-photon hits 0.5 cm apart in one layer merge into one."""
        from repro.physics.transport import TransportResult
        from repro.sources.grb import PhotonBatch

        resp = DetectorResponse(geometry, ResponseConfig(merge_radius_cm=0.9))
        transport = TransportResult(
            photon_index=np.array([0, 0]),
            order=np.array([0, 1]),
            positions=np.array([[0.0, 0.0, -0.5], [0.5, 0.0, -0.5]]),
            energies=np.array([0.3, 0.4]),
            num_interactions=np.array([2]),
            fate=np.array([2]),
            escaped_energy=np.array([0.0]),
        )
        batch = PhotonBatch(
            origins=np.zeros((1, 3)),
            directions=np.array([[0.0, 0.0, -1.0]]),
            energies=np.array([0.7]),
            times=np.zeros(1),
            labels=np.zeros(1, dtype=np.int64),
        )
        ev = resp.digitize(transport, batch, np.random.default_rng(9), min_hits=1)
        assert ev.num_events == 1
        assert ev.hits_per_event()[0] == 1
        assert ev.true_energies[0] == pytest.approx(0.7)

    def test_distant_hits_not_merged(self, geometry):
        from repro.physics.transport import TransportResult
        from repro.sources.grb import PhotonBatch

        resp = DetectorResponse(geometry)
        transport = TransportResult(
            photon_index=np.array([0, 0]),
            order=np.array([0, 1]),
            positions=np.array([[0.0, 0.0, -0.5], [0.0, 0.0, -12.0]]),
            energies=np.array([0.3, 0.4]),
            num_interactions=np.array([2]),
            fate=np.array([2]),
            escaped_energy=np.array([0.0]),
        )
        batch = PhotonBatch(
            origins=np.zeros((1, 3)),
            directions=np.array([[0.0, 0.0, -1.0]]),
            energies=np.array([0.7]),
            times=np.zeros(1),
            labels=np.zeros(1, dtype=np.int64),
        )
        ev = resp.digitize(transport, batch, np.random.default_rng(10), min_hits=1)
        assert ev.hits_per_event()[0] == 2
