"""Tests for the fiber-level readout and ghost-hit model."""

import numpy as np
import pytest

from repro.detector.fiber_readout import (
    FiberReadoutConfig,
    cluster_fibers,
    project_to_fibers,
    readout_layer,
)
from repro.geometry.fibers import FiberGrid


def quiet_config(**kw):
    defaults = dict(fiber_noise_pe=0.0, fiber_threshold=0.005)
    defaults.update(kw)
    return FiberReadoutConfig(**defaults)


class TestConfig:
    def test_invalid_sharing(self):
        with pytest.raises(ValueError):
            FiberReadoutConfig(light_sharing=0.5)

    def test_invalid_match_sigma(self):
        with pytest.raises(ValueError):
            FiberReadoutConfig(energy_match_sigma=0.0)


class TestProjection:
    def test_energy_conserved_without_noise(self):
        cfg = quiet_config(fiber_threshold=0.0)
        rng = np.random.default_rng(0)
        signals, _ = project_to_fibers(
            np.array([0.0, 5.0]), np.array([0.3, 0.5]), cfg, rng
        )
        assert signals.sum() == pytest.approx(0.8, rel=1e-9)

    def test_light_sharing_spreads_to_neighbors(self):
        cfg = quiet_config(fiber_threshold=0.0, light_sharing=0.2)
        rng = np.random.default_rng(1)
        signals, _ = project_to_fibers(np.array([0.0]), np.array([1.0]), cfg, rng)
        fired = np.nonzero(signals > 1e-6)[0]
        assert fired.size == 3
        assert signals[fired[1]] == pytest.approx(0.6)

    def test_owner_tracking(self):
        cfg = quiet_config(fiber_threshold=0.0)
        rng = np.random.default_rng(2)
        signals, owners = project_to_fibers(
            np.array([-10.0, 10.0]), np.array([0.5, 0.5]), cfg, rng
        )
        grid = cfg.grid
        assert owners[grid.fiber_index(np.array([-10.0]))[0]] == 0
        assert owners[grid.fiber_index(np.array([10.0]))[0]] == 1


class TestClustering:
    def test_separated_deposits_two_clusters(self):
        cfg = quiet_config()
        rng = np.random.default_rng(3)
        signals, owners = project_to_fibers(
            np.array([-10.0, 10.0]), np.array([0.4, 0.6]), cfg, rng
        )
        clusters, cluster_owners = cluster_fibers(signals, owners, cfg)
        assert len(clusters) == 2
        assert sorted(cluster_owners) == [0, 1]
        positions = sorted(c.position_cm for c in clusters)
        assert positions[0] == pytest.approx(-10.0, abs=cfg.grid.pitch_cm)
        assert positions[1] == pytest.approx(10.0, abs=cfg.grid.pitch_cm)

    def test_adjacent_deposits_merge(self):
        cfg = quiet_config()
        rng = np.random.default_rng(4)
        signals, owners = project_to_fibers(
            np.array([0.0, 0.2]), np.array([0.4, 0.4]), cfg, rng
        )
        clusters, _ = cluster_fibers(signals, owners, cfg)
        assert len(clusters) == 1

    def test_empty(self):
        cfg = quiet_config()
        clusters, owners = cluster_fibers(
            np.zeros(cfg.grid.num_fibers), np.full(cfg.grid.num_fibers, -1),
            cfg,
        )
        assert clusters == [] and owners == []


class TestReadoutLayer:
    def test_single_hit_reconstructed(self):
        cfg = quiet_config()
        rng = np.random.default_rng(5)
        result = readout_layer(
            np.array([[3.0, -7.0]]), np.array([0.5]), cfg, rng
        )
        assert result.positions_xy.shape == (1, 2)
        assert not result.is_ghost[0]
        assert result.positions_xy[0, 0] == pytest.approx(3.0, abs=0.3)
        assert result.positions_xy[0, 1] == pytest.approx(-7.0, abs=0.3)
        assert result.energies[0] == pytest.approx(0.5, rel=0.05)

    def test_two_distinct_energies_paired_correctly(self):
        """Energy matching resolves the 2-hit ambiguity when deposits
        differ clearly."""
        cfg = quiet_config()
        rng = np.random.default_rng(6)
        result = readout_layer(
            np.array([[-10.0, -10.0], [10.0, 10.0]]),
            np.array([0.2, 0.8]),
            cfg,
            rng,
        )
        assert result.positions_xy.shape == (2, 2)
        assert not result.is_ghost.any()
        # Hits land near the true crossings, not the ghost crossings.
        for true in ([-10.0, -10.0], [10.0, 10.0]):
            d = np.linalg.norm(result.positions_xy - true, axis=1).min()
            assert d < 0.5

    def test_equal_energies_can_ghost(self):
        """With equal deposits, pairing is ambiguous; across many trials
        a nonzero ghost fraction appears (and is truthfully flagged)."""
        cfg = FiberReadoutConfig(fiber_noise_pe=0.004)
        ghost_any = 0
        for seed in range(40):
            rng = np.random.default_rng(100 + seed)
            result = readout_layer(
                np.array([[-8.0, -8.0], [8.0, 8.0]]),
                np.array([0.4, 0.4]),
                cfg,
                rng,
            )
            if result.is_ghost.any():
                ghost_any += 1
        assert 0 < ghost_any < 40

    def test_noise_only_layer(self):
        cfg = FiberReadoutConfig(fiber_noise_pe=0.0)
        rng = np.random.default_rng(7)
        result = readout_layer(np.empty((0, 2)), np.empty(0), cfg, rng)
        assert result.positions_xy.shape == (0, 2)
