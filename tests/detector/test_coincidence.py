"""Tests for the coincidence-window event builder (pile-up)."""

import numpy as np
import pytest

from repro.detector.coincidence import (
    CoincidenceConfig,
    build_events_with_pileup,
)
from repro.physics.transport import TransportResult
from repro.sources.grb import PhotonBatch


def make_transport_and_batch(times, hits_per_photon):
    """Synthetic transport: each photon gets the given number of hits."""
    n = len(times)
    photon_index = np.repeat(np.arange(n), hits_per_photon)
    order = np.concatenate([np.arange(c) for c in hits_per_photon])
    k = photon_index.size
    rng = np.random.default_rng(0)
    transport = TransportResult(
        photon_index=photon_index,
        order=order,
        positions=rng.normal(size=(k, 3)),
        energies=rng.uniform(0.05, 0.5, k),
        num_interactions=np.asarray(hits_per_photon),
        fate=np.full(n, 2),
        escaped_energy=np.zeros(n),
    )
    batch = PhotonBatch(
        origins=np.zeros((n, 3)),
        directions=np.tile([0.0, 0.0, -1.0], (n, 1)),
        energies=np.full(n, 1.0),
        times=np.asarray(times, dtype=np.float64),
        labels=np.arange(n, dtype=np.int64) % 2,
        source_direction=np.array([0.0, 0.0, 1.0]),
    )
    return transport, batch


class TestCoincidenceConfig:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            CoincidenceConfig(window_s=0.0)


class TestBuildEvents:
    def test_well_separated_photons_unchanged(self):
        transport, batch = make_transport_and_batch(
            [0.0, 0.1, 0.2], [2, 2, 2]
        )
        result = build_events_with_pileup(
            transport, batch, CoincidenceConfig(window_s=1e-6)
        )
        assert result.pileup_fraction == 0.0
        assert result.batch.num_photons == 3
        assert result.transport.num_hits == 6

    def test_coincident_photons_merged(self):
        transport, batch = make_transport_and_batch(
            [0.100000, 0.1000005, 0.5], [2, 2, 2]
        )
        result = build_events_with_pileup(
            transport, batch, CoincidenceConfig(window_s=1e-6)
        )
        # Photons 0 and 1 merge; photon 2 stands alone.
        assert result.batch.num_photons == 2
        counts = np.bincount(result.transport.photon_index)
        assert sorted(counts.tolist()) == [2, 4]
        assert result.pileup_fraction == pytest.approx(0.5)

    def test_merged_event_inherits_trigger_truth(self):
        transport, batch = make_transport_and_batch(
            [0.2000001, 0.2, 0.9], [1, 1, 1]
        )
        result = build_events_with_pileup(
            transport, batch, CoincidenceConfig(window_s=1e-6)
        )
        # The earlier photon (index 1, t=0.2) triggers the merged event.
        assert result.batch.times[0] == pytest.approx(0.2)
        assert result.batch.labels[0] == batch.labels[1]

    def test_order_renumbered_within_group(self):
        transport, batch = make_transport_and_batch(
            [0.0, 0.0000001], [2, 3]
        )
        result = build_events_with_pileup(
            transport, batch, CoincidenceConfig(window_s=1e-6)
        )
        assert result.batch.num_photons == 1
        hits = result.transport.hits_of(0)
        assert np.array_equal(result.transport.order[hits], np.arange(5))

    def test_rolling_window_chains(self):
        """A chain of photons each within the window of the previous one
        merges into a single event (standard rolling event builder)."""
        transport, batch = make_transport_and_batch(
            [0.0, 0.9e-6, 1.8e-6, 2.7e-6], [1, 1, 1, 1]
        )
        result = build_events_with_pileup(
            transport, batch, CoincidenceConfig(window_s=1e-6)
        )
        assert result.batch.num_photons == 1
        assert result.pileup_fraction == 1.0

    def test_group_of_photon_mapping(self):
        transport, batch = make_transport_and_batch(
            [0.0, 0.5, 0.5000001], [1, 1, 1]
        )
        result = build_events_with_pileup(
            transport, batch, CoincidenceConfig(window_s=1e-6)
        )
        g = result.group_of_photon
        assert g[1] == g[2]
        assert g[0] != g[1]

    def test_empty_transport(self):
        transport, batch = make_transport_and_batch([0.0], [1])
        empty = TransportResult(
            photon_index=np.empty(0, dtype=np.int64),
            order=np.empty(0, dtype=np.int64),
            positions=np.empty((0, 3)),
            energies=np.empty(0),
            num_interactions=np.zeros(1, dtype=np.int64),
            fate=np.zeros(1, dtype=np.int64),
            escaped_energy=np.zeros(1),
        )
        result = build_events_with_pileup(empty, batch)
        assert result.pileup_fraction == 0.0
        assert np.all(result.group_of_photon == -1)

    def test_pileup_rate_increases_with_window(self, geometry, response):
        """On a real exposure, wider windows mean more pile-up."""
        from repro.sources.background import BackgroundModel
        from repro.sources.exposure import simulate_exposure
        from repro.sources.grb import GRBSource

        rng = np.random.default_rng(3)
        exp = simulate_exposure(
            geometry, rng, GRBSource(fluence_mev_cm2=2.0), BackgroundModel()
        )
        narrow = build_events_with_pileup(
            exp.transport, exp.batch, CoincidenceConfig(window_s=1e-7)
        )
        wide = build_events_with_pileup(
            exp.transport, exp.batch, CoincidenceConfig(window_s=1e-3)
        )
        assert wide.pileup_fraction > narrow.pileup_fraction

    def test_digitization_accepts_rebuilt_events(self, geometry, response):
        from repro.sources.background import BackgroundModel
        from repro.sources.exposure import simulate_exposure
        from repro.sources.grb import GRBSource

        rng = np.random.default_rng(4)
        exp = simulate_exposure(
            geometry, rng, GRBSource(fluence_mev_cm2=1.0), BackgroundModel()
        )
        rebuilt = build_events_with_pileup(
            exp.transport, exp.batch, CoincidenceConfig(window_s=1e-5)
        )
        events = response.digitize(
            rebuilt.transport, rebuilt.batch, rng, min_hits=2
        )
        assert events.num_events > 0
