"""Tests for the anytime latency scheduler."""

import pytest

from repro.platforms.platforms import ATOM, RPI3B_PLUS
from repro.platforms.scheduler import plan_cost_ms, plan_under_budget

NOMINAL = dict(num_events=1200, num_rings=597)


class TestPlanCost:
    def test_monotone_in_iterations(self):
        costs = [
            plan_cost_ms(ATOM, it, True, **NOMINAL) for it in range(6)
        ]
        assert all(b > a for a, b in zip(costs, costs[1:]))

    def test_deta_stage_adds_cost(self):
        without = plan_cost_ms(ATOM, 3, False, **NOMINAL)
        with_deta = plan_cost_ms(ATOM, 3, True, **NOMINAL)
        assert with_deta > without

    def test_full_plan_matches_table_total(self):
        """5 iterations + dEta stage reproduces the Table II total."""
        cost = plan_cost_ms(ATOM, 5, True, **NOMINAL)
        assert cost == pytest.approx(220.7, abs=0.5)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            plan_cost_ms(ATOM, -1, True, **NOMINAL)


class TestPlanUnderBudget:
    def test_generous_budget_runs_everything(self):
        plan = plan_under_budget(ATOM, budget_ms=500.0, **NOMINAL)
        assert plan.iterations == 5
        assert plan.run_deta_stage
        assert plan.meets_budget

    def test_tight_budget_cuts_iterations(self):
        full = plan_cost_ms(ATOM, 5, True, **NOMINAL)
        plan = plan_under_budget(ATOM, budget_ms=full * 0.6, **NOMINAL)
        assert plan.meets_budget
        assert plan.iterations < 5

    def test_impossible_budget_reports_overrun(self):
        plan = plan_under_budget(ATOM, budget_ms=1.0, **NOMINAL)
        assert not plan.meets_budget
        assert plan.iterations == 0
        assert not plan.run_deta_stage

    def test_rpi_fits_fewer_iterations_than_atom(self):
        budget = 300.0
        atom = plan_under_budget(ATOM, budget_ms=budget, **NOMINAL)
        rpi = plan_under_budget(RPI3B_PLUS, budget_ms=budget, **NOMINAL)
        assert atom.iterations >= rpi.iterations

    def test_smaller_workload_fits_more(self):
        budget = 120.0
        heavy = plan_under_budget(ATOM, budget_ms=budget, **NOMINAL)
        light = plan_under_budget(
            ATOM, budget_ms=budget, num_events=300, num_rings=150
        )
        assert (light.iterations, light.run_deta_stage) >= (
            heavy.iterations,
            heavy.run_deta_stage,
        )

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            plan_under_budget(ATOM, budget_ms=0.0, **NOMINAL)

    def test_prediction_consistent(self):
        plan = plan_under_budget(ATOM, budget_ms=150.0, **NOMINAL)
        assert plan.predicted_ms == pytest.approx(
            plan_cost_ms(ATOM, plan.iterations, plan.run_deta_stage, **NOMINAL)
        )
