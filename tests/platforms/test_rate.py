"""Tests for event-rate capacity analysis."""

import pytest

from repro.platforms.platforms import ATOM, RPI3B_PLUS
from repro.platforms.rate import max_sustainable_rate, rate_capacity, utilization


class TestRateCapacity:
    def test_atom_outruns_rpi(self):
        atom = rate_capacity(ATOM)
        rpi = rate_capacity(RPI3B_PLUS)
        assert atom.max_event_rate_hz > rpi.max_event_rate_hz
        assert atom.triggers_per_second > rpi.triggers_per_second

    def test_localization_matches_table_total(self):
        assert rate_capacity(ATOM).localization_ms == pytest.approx(220.7, abs=0.5)

    def test_reconstruction_rate_from_table(self):
        # 18.6 ms per 1200 events -> ~64.5k events/s.
        cap = rate_capacity(ATOM)
        assert cap.max_event_rate_hz == pytest.approx(1200 / 0.0186, rel=1e-6)


class TestUtilization:
    def test_zero_workload(self):
        assert utilization(ATOM, 0.0) == 0.0

    def test_linear_in_event_rate(self):
        u1 = utilization(ATOM, 10_000.0)
        u2 = utilization(ATOM, 20_000.0)
        assert u2 == pytest.approx(2 * u1)

    def test_triggers_add_load(self):
        base = utilization(ATOM, 10_000.0)
        with_triggers = utilization(ATOM, 10_000.0, triggers_per_hour=3600.0)
        assert with_triggers > base

    def test_saturation_detectable(self):
        cap = rate_capacity(ATOM)
        assert utilization(ATOM, 2.0 * cap.max_event_rate_hz) > 1.0

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            utilization(ATOM, -1.0)


class TestMaxSustainableRate:
    def test_below_saturation(self):
        rate = max_sustainable_rate(ATOM, triggers_per_hour=10.0, headroom=0.2)
        assert 0 < rate < rate_capacity(ATOM).max_event_rate_hz

    def test_utilization_at_answer(self):
        rate = max_sustainable_rate(ATOM, triggers_per_hour=10.0, headroom=0.2)
        assert utilization(ATOM, rate, 10.0) == pytest.approx(0.8, rel=1e-6)

    def test_headroom_reduces_rate(self):
        loose = max_sustainable_rate(ATOM, headroom=0.0)
        tight = max_sustainable_rate(ATOM, headroom=0.5)
        assert tight < loose

    def test_impossible_trigger_load(self):
        with pytest.raises(ValueError):
            max_sustainable_rate(ATOM, triggers_per_hour=1e9)

    def test_invalid_headroom(self):
        with pytest.raises(ValueError):
            max_sustainable_rate(ATOM, headroom=1.0)

    def test_apt_scale_demand(self):
        """APT (~25x aperture) exceeds the RPi's capacity margin sooner
        than the Atom's — the paper's motivation for faster platforms."""
        adapt_rate = 2000.0  # events/s scale for the demonstrator
        apt_rate = 25.0 * adapt_rate
        assert utilization(RPI3B_PLUS, apt_rate) > utilization(ATOM, apt_rate)