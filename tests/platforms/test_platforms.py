"""Tests for the embedded-platform timing models (Tables I & II)."""

import numpy as np
import pytest

from repro.platforms.platforms import (
    ATOM,
    PAPER_NOMINAL_EVENTS,
    PAPER_NOMINAL_RINGS,
    RPI3B_PLUS,
    STAGE_NAMES,
)

PAPER_TABLE1 = {
    "Reconstruction": (36.9, 35, 44),
    "Localization Setup": (35.4, 34, 99),
    "DEta NN Inference": (31.0, 17, 41),
    "Bkg NN Inference": (36.1, 22, 58),
    "Approx + Refine": (91.7, 89, 107),
}
PAPER_TABLE2 = {
    "Reconstruction": (18.6, 15, 26),
    "Localization Setup": (12.1, 12, 13),
    "DEta NN Inference": (5.5, 5, 6),
    "Bkg NN Inference": (14.7, 14, 15),
    "Approx + Refine": (18.5, 17, 21),
}


class TestNominalPrediction:
    def test_rpi_rows_match_table1(self):
        times = RPI3B_PLUS.predict()
        for stage, (mean, lo, hi) in PAPER_TABLE1.items():
            assert times.mean_ms[stage] == pytest.approx(mean)
            assert times.range_ms[stage] == pytest.approx((lo, hi))

    def test_atom_rows_match_table2(self):
        times = ATOM.predict()
        for stage, (mean, lo, hi) in PAPER_TABLE2.items():
            assert times.mean_ms[stage] == pytest.approx(mean)

    def test_rpi_total_matches_paper(self):
        assert RPI3B_PLUS.predict().total_mean() == pytest.approx(834.0, abs=0.5)

    def test_atom_total_matches_paper(self):
        assert ATOM.predict().total_mean() == pytest.approx(220.7, abs=0.5)

    def test_rpi_total_range(self):
        lo, hi = RPI3B_PLUS.predict().total_range()
        # Paper reports 730-1116.
        assert lo == pytest.approx(730.0, abs=1.0)
        assert hi == pytest.approx(1116.0, abs=1.0)

    def test_atom_total_range(self):
        lo, hi = ATOM.predict().total_range()
        assert lo == pytest.approx(204.0, abs=1.0)
        assert hi == pytest.approx(246.0, abs=1.0)


class TestWorkloadScaling:
    def test_ring_stages_scale_with_rings(self):
        half = RPI3B_PLUS.predict(num_rings=PAPER_NOMINAL_RINGS // 2)
        full = RPI3B_PLUS.predict()
        assert half.mean_ms["Bkg NN Inference"] == pytest.approx(
            full.mean_ms["Bkg NN Inference"] * (PAPER_NOMINAL_RINGS // 2)
            / PAPER_NOMINAL_RINGS
        )
        # Reconstruction depends on events, not rings.
        assert half.mean_ms["Reconstruction"] == pytest.approx(
            full.mean_ms["Reconstruction"]
        )

    def test_event_stage_scales_with_events(self):
        double = RPI3B_PLUS.predict(num_events=2 * PAPER_NOMINAL_EVENTS)
        full = RPI3B_PLUS.predict()
        assert double.mean_ms["Reconstruction"] == pytest.approx(
            2 * full.mean_ms["Reconstruction"]
        )

    def test_negative_workload_rejected(self):
        with pytest.raises(ValueError):
            RPI3B_PLUS.predict(num_events=-1)

    def test_atom_faster_than_rpi_everywhere(self):
        rpi = RPI3B_PLUS.predict()
        atom = ATOM.predict()
        for stage in STAGE_NAMES:
            assert atom.mean_ms[stage] < rpi.mean_ms[stage]

    def test_iterations_parameter(self):
        t = ATOM.predict()
        t1 = t.total_mean(iterations=1)
        t5 = t.total_mean(iterations=5)
        per_iter = t.mean_ms["Bkg NN Inference"] + t.mean_ms["Approx + Refine"]
        assert t5 - t1 == pytest.approx(4 * per_iter)


class TestHostTiming:
    def test_stage_timer(self):
        from repro.platforms.timing import StageTimer
        import time

        timer = StageTimer()
        with timer.stage("work"):
            time.sleep(0.01)
        assert timer.mean_ms("work") >= 9.0
        lo, hi = timer.range_ms("work")
        assert lo <= timer.mean_ms("work") <= hi

    def test_missing_stage_raises(self):
        from repro.platforms.timing import StageTimer

        with pytest.raises(KeyError):
            StageTimer().mean_ms("nope")

    def test_time_pipeline_stages(self, geometry, response, tiny_models):
        from repro.platforms.timing import time_pipeline_stages

        result = time_pipeline_stages(
            geometry, response, tiny_models, np.random.default_rng(0), repeats=1
        )
        for stage in STAGE_NAMES:
            assert result.timer.mean_ms(stage) >= 0.0
        assert result.num_events > 0
        assert result.num_rings > 0
