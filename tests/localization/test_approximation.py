"""Tests for the approximation stage."""

import numpy as np
import pytest

from repro.localization.approximation import approximate_source, cone_points
from tests.localization.test_likelihood import make_rings


def synthetic_rings(s_true, n=60, noise=0.01, seed=0):
    rng = np.random.default_rng(seed)
    axes = rng.normal(size=(n, 3))
    axes /= np.linalg.norm(axes, axis=1, keepdims=True)
    etas = axes @ s_true + rng.normal(0, noise, n)
    keep = np.abs(etas) < 0.98
    return make_rings(axes[keep], etas[keep], np.full(keep.sum(), max(noise, 1e-3)))


class TestConePoints:
    def test_points_on_cone(self):
        axis = np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
        eta = np.array([0.3, -0.6])
        pts = cone_points(axis, eta, 16)
        assert pts.shape == (32, 3)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0)
        dots0 = pts[:16] @ axis[0]
        dots1 = pts[16:] @ axis[1]
        assert np.allclose(dots0, 0.3, atol=1e-12)
        assert np.allclose(dots1, -0.6, atol=1e-12)

    def test_degenerate_eta_clipped(self):
        pts = cone_points(np.array([[0.0, 0.0, 1.0]]), np.array([1.5]), 8)
        assert np.allclose(pts, [0, 0, 1])


class TestApproximateSource:
    def test_recovers_synthetic_source(self):
        s_true = np.array([0.2, -0.3, 0.9])
        s_true /= np.linalg.norm(s_true)
        rings = synthetic_rings(s_true)
        s0 = approximate_source(rings, np.random.default_rng(1), sample_size=20)
        err = np.degrees(np.arccos(np.clip(s0 @ s_true, -1, 1)))
        assert err < 10.0

    def test_empty_rings_returns_none(self):
        rings = synthetic_rings(np.array([0.0, 0.0, 1.0]))
        empty = rings.select(np.zeros(rings.num_rings, dtype=bool))
        assert approximate_source(empty, np.random.default_rng(2)) is None

    def test_horizon_filter(self):
        """A below-horizon source is unreachable by construction."""
        s_below = np.array([0.0, 0.0, -1.0])
        rings = synthetic_rings(s_below, seed=3)
        s0 = approximate_source(rings, np.random.default_rng(3))
        if s0 is not None:
            assert s0[2] >= -0.05 - 1e-9

    def test_top_k_returns_separated_seeds(self):
        s_true = np.array([0.0, 0.0, 1.0])
        rings = synthetic_rings(s_true, n=100, seed=4)
        seeds = approximate_source(
            rings, np.random.default_rng(4), top_k=3, min_separation_deg=10.0
        )
        assert seeds.ndim == 2 and seeds.shape[1] == 3
        for i in range(seeds.shape[0]):
            for j in range(i + 1, seeds.shape[0]):
                angle = np.degrees(
                    np.arccos(np.clip(seeds[i] @ seeds[j], -1, 1))
                )
                assert angle > 10.0 - 1e-6

    def test_deterministic_given_rng(self):
        s_true = np.array([0.0, 0.0, 1.0])
        rings = synthetic_rings(s_true, seed=5)
        a = approximate_source(rings, np.random.default_rng(6))
        b = approximate_source(rings, np.random.default_rng(6))
        assert np.array_equal(a, b)
