"""Property-based tests for the sky grid and containment machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.localization.skymap import SkyGrid


@given(
    st.floats(min_value=1.0, max_value=10.0),
    st.floats(min_value=20.0, max_value=95.0),
)
@settings(max_examples=20, deadline=None)
def test_skygrid_area_and_norms(resolution, max_polar):
    grid = SkyGrid.build(resolution_deg=resolution, max_polar_deg=max_polar)
    # Pixels are unit vectors inside the polar cap.
    assert np.allclose(np.linalg.norm(grid.directions, axis=1), 1.0)
    polar = np.degrees(np.arccos(np.clip(grid.directions[:, 2], -1, 1)))
    assert polar.max() <= max_polar + 1e-6
    # Areas tile the cap exactly.
    cap = 2.0 * np.pi * (1.0 - np.cos(np.deg2rad(max_polar)))
    assert np.isclose(grid.pixel_area_sr.sum(), cap, rtol=1e-9)
    assert np.all(grid.pixel_area_sr > 0)


@given(st.floats(min_value=1.0, max_value=8.0))
@settings(max_examples=10, deadline=None)
def test_skygrid_azimuthal_coverage(resolution):
    """Every polar band covers all azimuths roughly uniformly."""
    grid = SkyGrid.build(resolution_deg=resolution, max_polar_deg=90.0)
    az = np.degrees(np.arctan2(grid.directions[:, 1], grid.directions[:, 0]))
    # Mean azimuthal direction vector should nearly cancel.
    mean_vec = np.array(
        [np.cos(np.deg2rad(az)).mean(), np.sin(np.deg2rad(az)).mean()]
    )
    assert np.linalg.norm(mean_vec) < 0.15
