"""Tests for the coarse-to-fine hierarchical sky search."""

import numpy as np
import pytest

from repro.localization.hierarchy import (
    CellSet,
    SkymapConfig,
    coarse_cells,
    evaluate_cells,
    hierarchical_skymap,
    refine_mask,
)
from repro.localization.skymap import SkyGrid, compute_skymap
from tests.localization.test_approximation import synthetic_rings

HEMISPHERE_SR = 2.0 * np.pi * (1.0 - np.cos(np.deg2rad(95.0)))


def _unit(v):
    v = np.asarray(v, dtype=np.float64)
    return v / np.linalg.norm(v)


class TestSkymapConfig:
    def test_defaults_valid(self):
        cfg = SkymapConfig()
        assert cfg.num_levels == 4  # 8 deg -> 0.5 deg

    def test_num_levels_rounds_up(self):
        assert SkymapConfig(resolution_deg=0.3).num_levels == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"resolution_deg": 0.0},
            {"coarse_resolution_deg": -1.0},
            {"resolution_deg": 9.0},  # coarser than the coarse grid
            {"top_k": 0},
            {"margin": -0.1},
            {"temperature": 0.0},
            {"max_polar_deg": 0.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            SkymapConfig(**kwargs)


class TestCellSet:
    def test_coarse_cells_tile_search_region(self):
        cells = coarse_cells(8.0, 95.0)
        assert cells.areas_sr().sum() == pytest.approx(HEMISPHERE_SR, rel=1e-9)

    def test_split_partitions_exactly(self):
        cells = coarse_cells(8.0, 95.0)
        children = cells.split()
        assert children.num_cells == 4 * cells.num_cells
        assert children.areas_sr().sum() == pytest.approx(
            cells.areas_sr().sum(), rel=1e-9
        )

    def test_split_halves_half_widths(self):
        cells = coarse_cells(8.0, 95.0)
        child_hw = cells.split().half_widths_rad()
        # Each child's scale is about half its parent's (exactly half in
        # polar width; azimuthal width also picks up the center-latitude
        # shift, hence the loose bound).
        parent_hw = np.repeat(cells.half_widths_rad(), 4).reshape(4, -1)
        assert np.all(child_hw > 0)
        assert np.all(
            child_hw.reshape(4, -1) < 0.75 * parent_hw
        )

    def test_centers_unit_norm_inside_bounds(self):
        cells = coarse_cells(10.0, 95.0)
        centers = cells.centers()
        assert np.allclose(np.linalg.norm(centers, axis=1), 1.0)
        theta = np.arccos(np.clip(centers[:, 2], -1.0, 1.0))
        assert np.all(theta >= cells.theta_lo - 1e-12)
        assert np.all(theta <= cells.theta_hi + 1e-12)

    def test_invalid_coarse_grid(self):
        with pytest.raises(ValueError):
            coarse_cells(0.0)


class TestRefineMask:
    def test_top_k_always_selected(self):
        log_post = np.array([-50.0, -3.0, -40.0, 0.0])
        mask = refine_mask(log_post, top_k=1, margin=0.0)
        assert mask.tolist() == [False, False, False, True]

    def test_margin_adds_competitive_cells(self):
        log_post = np.array([-50.0, -3.0, -40.0, 0.0])
        mask = refine_mask(log_post, top_k=1, margin=5.0)
        assert mask.tolist() == [False, True, False, True]


class TestHierarchicalSkymap:
    def test_matches_flat_scan(self):
        s_true = _unit([0.3, 0.1, 0.95])
        rings = synthetic_rings(s_true, n=80, noise=0.01, seed=0)
        res_deg = 1.0
        flat = compute_skymap(rings, SkyGrid.build(res_deg, 95.0))
        hier = hierarchical_skymap(
            rings, SkymapConfig(resolution_deg=res_deg)
        )
        sep = np.degrees(
            np.arccos(
                np.clip(
                    flat.best_direction() @ hier.sky.best_direction(),
                    -1.0,
                    1.0,
                )
            )
        )
        assert sep <= res_deg
        a_flat = flat.credible_region_area_deg2(0.9)
        a_hier = hier.sky.credible_region_area_deg2(0.9)
        assert a_hier == pytest.approx(a_flat, rel=0.5)

    def test_far_cheaper_than_flat(self):
        rings = synthetic_rings(_unit([0.0, 0.2, 0.98]), n=60, seed=3)
        res_deg = 0.5
        hier = hierarchical_skymap(rings, SkymapConfig(resolution_deg=res_deg))
        flat_pixels = SkyGrid.build(res_deg, 95.0).num_pixels
        assert hier.cells_evaluated < flat_pixels / 20

    def test_probability_normalized_area_conserved(self):
        rings = synthetic_rings(_unit([0.1, -0.3, 0.9]), seed=4)
        hier = hierarchical_skymap(rings)
        assert hier.sky.probability.sum() == pytest.approx(1.0)
        assert hier.sky.grid.pixel_area_sr.sum() == pytest.approx(
            HEMISPHERE_SR, rel=1e-9
        )
        assert hier.levels == SkymapConfig().num_levels
        assert hier.num_leaves == hier.sky.grid.num_pixels

    def test_zenith_source_reaches_target_resolution(self):
        # Regression: an equal-area polar split shrinks cap cells by only
        # sqrt(2) per level, leaving a zenith source stranded ~1 degree
        # from every pixel center at a 0.25-degree target.
        s_true = np.array([0.0, 0.0, 1.0])
        rings = synthetic_rings(s_true, n=80, noise=0.01, seed=5)
        cfg = SkymapConfig(resolution_deg=0.25)
        hier = hierarchical_skymap(rings, cfg)
        nearest = np.degrees(
            np.arccos(np.clip(hier.sky.grid.directions @ s_true, -1, 1))
        ).min()
        assert nearest <= cfg.resolution_deg
        assert hier.sky.contains(s_true, 0.9)

    def test_multimodal_margin_guard(self):
        # Ring axes confined to the x-z plane make the likelihood exactly
        # symmetric under y -> -y, so the posterior is bimodal with two
        # equal peaks.  With top_k=1 the margin window is what keeps the
        # mirror mode in the refinement frontier down to fine levels.
        from tests.localization.test_likelihood import make_rings

        rng = np.random.default_rng(6)
        n = 30
        ang = rng.uniform(0.0, np.pi / 2, n)
        axes = np.stack(
            [np.sin(ang), np.zeros(n), np.cos(ang)], axis=1
        )
        s1 = _unit([0.3, 0.4, 0.86])
        s2 = _unit([0.3, -0.4, 0.86])
        rings = make_rings(axes, axes @ s1, np.full(n, 0.01))
        cfg = SkymapConfig(resolution_deg=1.0, top_k=1, margin=6.0)
        sky = hierarchical_skymap(rings, cfg).sky
        m1 = sky.probability_within(s1, 3.0)
        m2 = sky.probability_within(s2, 3.0)
        assert m1 > 0.3 and m2 > 0.3
        assert sky.contains(s1, 0.9) and sky.contains(s2, 0.9)

    def test_temperature_widens_regions(self):
        rings = synthetic_rings(_unit([0.2, 0.1, 0.95]), n=60, seed=8)
        cold = hierarchical_skymap(rings, SkymapConfig(temperature=1.0))
        hot = hierarchical_skymap(rings, SkymapConfig(temperature=4.0))
        assert hot.sky.credible_region_area_deg2(
            0.9
        ) > cold.sky.credible_region_area_deg2(0.9)

    def test_empty_rings_rejected(self):
        from tests.localization.test_likelihood import make_rings

        empty = make_rings(
            np.zeros((0, 3)), np.zeros(0), np.zeros(0)
        )
        with pytest.raises(ValueError):
            hierarchical_skymap(empty)


class TestEvaluateCells:
    def test_broadening_keeps_sharp_corridors_visible(self):
        # A razor-thin ring set (deta far below the coarse cell size):
        # with resolution-matched broadening the truth's coarse cell must
        # score within the refinement margin of the best cell, or the
        # search would discard the right branch at level 0.
        s_true = _unit([0.2, -0.1, 0.97])
        rings = synthetic_rings(s_true, n=60, noise=1e-4, seed=9)
        cells = coarse_cells(8.0, 95.0)
        _, log_post = evaluate_cells(rings, cells, cap=25.0)
        theta = np.arccos(np.clip(s_true[2], -1.0, 1.0))
        phi = np.mod(np.arctan2(s_true[1], s_true[0]), 2.0 * np.pi)
        holder = (
            (cells.theta_lo <= theta)
            & (theta <= cells.theta_hi)
            & (cells.phi_lo <= phi)
            & (phi <= cells.phi_hi)
        )
        assert holder.any()
        assert log_post[holder].max() >= log_post.max() - 6.0

    def test_cell_set_select_roundtrip(self):
        cells = coarse_cells(10.0)
        mask = np.zeros(cells.num_cells, dtype=bool)
        mask[:5] = True
        kept = cells.select(mask)
        assert kept.num_cells == 5
        assert np.allclose(kept.theta_lo, cells.theta_lo[:5])
