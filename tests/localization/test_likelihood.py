"""Tests for the ring likelihood model."""

import numpy as np
import pytest

from repro.localization.likelihood import (
    capped_chi_square,
    joint_log_likelihood,
    ring_chi_square,
)
from repro.reconstruction.rings import RingSet


def make_rings(axes, etas, detas, source=None):
    axes = np.atleast_2d(np.asarray(axes, dtype=np.float64))
    m = axes.shape[0]
    return RingSet(
        axis=axes,
        eta=np.asarray(etas, dtype=np.float64),
        deta=np.asarray(detas, dtype=np.float64),
        event_index=np.arange(m),
        first_hit=np.zeros(m, dtype=np.int64),
        second_hit=np.ones(m, dtype=np.int64),
        ordering_score=np.full(m, np.nan),
        labels=np.zeros(m, dtype=np.int64),
        ordering_correct=np.ones(m, dtype=bool),
        source_direction=source,
    )


class TestRingChiSquare:
    def test_zero_on_cone(self):
        rings = make_rings([[0, 0, 1]], [0.5], [0.1])
        s = np.array([np.sqrt(1 - 0.25), 0.0, 0.5])  # c.s = 0.5
        assert ring_chi_square(rings, s)[0] == pytest.approx(0.0, abs=1e-12)

    def test_normalized_by_deta(self):
        rings = make_rings([[0, 0, 1]], [0.0], [0.1])
        s = np.array([0.0, 0.0, 1.0])  # residual = 1.0
        assert ring_chi_square(rings, s)[0] == pytest.approx(100.0)

    def test_multiple_directions_shape(self):
        rings = make_rings([[0, 0, 1], [1, 0, 0]], [0.3, 0.4], [0.1, 0.2])
        dirs = np.eye(3)
        chi2 = ring_chi_square(rings, dirs)
        assert chi2.shape == (2, 3)

    def test_single_direction_returns_vector(self):
        rings = make_rings([[0, 0, 1], [1, 0, 0]], [0.3, 0.4], [0.1, 0.2])
        chi2 = ring_chi_square(rings, np.array([0.0, 0.0, 1.0]))
        assert chi2.shape == (2,)


class TestCappedChiSquare:
    def test_cap_limits_contribution(self):
        rings = make_rings([[0, 0, 1]], [0.0], [0.01])
        s = np.array([[0.0, 0.0, 1.0]])  # chi2 = 1e4 before cap
        assert capped_chi_square(rings, s, cap=9.0)[0] == pytest.approx(9.0)

    def test_sum_over_rings(self):
        rings = make_rings(
            [[0, 0, 1], [0, 0, 1]], [1.0, 0.0], [0.5, 0.5]
        )
        s = np.array([[0.0, 0.0, 1.0]])
        # Residuals 0 and 1 -> chi2 0 and 4 (capped at 9).
        assert capped_chi_square(rings, s, cap=9.0)[0] == pytest.approx(4.0)


class TestJointLogLikelihood:
    def test_higher_at_true_source(self):
        s_true = np.array([0.0, 0.0, 1.0])
        rng = np.random.default_rng(0)
        axes = rng.normal(size=(50, 3))
        axes /= np.linalg.norm(axes, axis=1, keepdims=True)
        etas = axes @ s_true + rng.normal(0, 0.02, 50)
        rings = make_rings(axes, etas, np.full(50, 0.02))
        ll_true = joint_log_likelihood(rings, s_true)
        ll_off = joint_log_likelihood(rings, np.array([1.0, 0.0, 0.0]))
        assert ll_true > ll_off

    def test_deta_penalty_term(self):
        """Wider rings lower the log-likelihood even at zero residual."""
        narrow = make_rings([[0, 0, 1]], [1.0], [0.01])
        wide = make_rings([[0, 0, 1]], [1.0], [0.5])
        s = np.array([0.0, 0.0, 1.0])
        assert joint_log_likelihood(narrow, s) > joint_log_likelihood(wide, s)
