"""Tests for sky maps and credible regions."""

import numpy as np
import pytest

from repro.localization.skymap import SkyGrid, compute_skymap
from tests.localization.test_approximation import synthetic_rings


class TestSkyGrid:
    def test_pixels_unit_norm(self):
        grid = SkyGrid.build(resolution_deg=5.0)
        assert np.allclose(np.linalg.norm(grid.directions, axis=1), 1.0)

    def test_total_area_matches_cap(self):
        max_polar = 95.0
        grid = SkyGrid.build(resolution_deg=3.0, max_polar_deg=max_polar)
        expected = 2.0 * np.pi * (1.0 - np.cos(np.deg2rad(max_polar)))
        assert grid.pixel_area_sr.sum() == pytest.approx(expected, rel=1e-6)

    def test_pixel_areas_roughly_uniform(self):
        grid = SkyGrid.build(resolution_deg=2.0)
        areas = grid.pixel_area_sr
        assert areas.max() / np.median(areas) < 3.0

    def test_finer_resolution_more_pixels(self):
        coarse = SkyGrid.build(resolution_deg=5.0)
        fine = SkyGrid.build(resolution_deg=2.0)
        assert fine.num_pixels > coarse.num_pixels

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            SkyGrid.build(resolution_deg=0.0)


class TestComputeSkymap:
    def test_peak_near_true_source(self):
        s_true = np.array([0.3, 0.1, 0.95])
        s_true /= np.linalg.norm(s_true)
        rings = synthetic_rings(s_true, n=80, noise=0.01, seed=0)
        sky = compute_skymap(rings, SkyGrid.build(resolution_deg=1.0))
        best = sky.best_direction()
        err = np.degrees(np.arccos(np.clip(best @ s_true, -1, 1)))
        assert err < 2.0

    def test_probability_normalized(self):
        rings = synthetic_rings(np.array([0.0, 0.0, 1.0]), seed=1)
        sky = compute_skymap(rings)
        assert sky.probability.sum() == pytest.approx(1.0)
        assert np.all(sky.probability >= 0)

    def test_credible_region_monotone_in_level(self):
        rings = synthetic_rings(np.array([0.0, 0.0, 1.0]), seed=2)
        sky = compute_skymap(rings)
        a68 = sky.credible_region_area_deg2(0.68)
        a95 = sky.credible_region_area_deg2(0.95)
        assert 0 < a68 <= a95

    def test_sharper_rings_shrink_region(self):
        s = np.array([0.0, 0.0, 1.0])
        sharp = synthetic_rings(s, n=80, noise=0.005, seed=3)
        fuzzy = synthetic_rings(s, n=80, noise=0.05, seed=3)
        grid = SkyGrid.build(resolution_deg=1.0)
        a_sharp = compute_skymap(sharp, grid).credible_region_area_deg2(0.9)
        a_fuzzy = compute_skymap(fuzzy, grid).credible_region_area_deg2(0.9)
        assert a_sharp < a_fuzzy

    def test_probability_within_radius(self):
        s_true = np.array([0.0, 0.0, 1.0])
        rings = synthetic_rings(s_true, n=100, noise=0.01, seed=4)
        sky = compute_skymap(rings, SkyGrid.build(resolution_deg=1.0))
        assert sky.probability_within(s_true, 10.0) > 0.9

    def test_empty_rings_rejected(self):
        rings = synthetic_rings(np.array([0.0, 0.0, 1.0]), seed=5)
        empty = rings.select(np.zeros(rings.num_rings, dtype=bool))
        with pytest.raises(ValueError):
            compute_skymap(empty)

    def test_invalid_level(self):
        rings = synthetic_rings(np.array([0.0, 0.0, 1.0]), seed=6)
        sky = compute_skymap(rings)
        with pytest.raises(ValueError):
            sky.credible_region_area_deg2(0.0)

    def test_exact_boundary_not_overcounted(self):
        # Ten pixels of exactly 0.1 mass each: a 0.8-credible region is
        # exactly eight pixels.  Floating-point cumsum used to land one
        # ulp short of 0.8 and pull in a ninth pixel.
        from repro.localization.skymap import SkyMap

        n = 10
        theta = np.linspace(0.1, 1.0, n)
        directions = np.stack(
            [np.sin(theta), np.zeros(n), np.cos(theta)], axis=1
        )
        area = np.full(n, 1e-3)
        grid = SkyGrid(directions=directions, pixel_area_sr=area)
        sky = SkyMap(
            grid=grid,
            log_likelihood=np.zeros(n),
            probability=np.full(n, 0.1),
        )
        expected = 8 * 1e-3 * np.degrees(1.0) ** 2
        assert sky.credible_region_area_deg2(0.8) == pytest.approx(expected)

    def test_on_simulated_rings(self, rings, exposure):
        """A real exposure's sky map peaks near the true burst."""
        sky = compute_skymap(rings, SkyGrid.build(resolution_deg=2.0))
        best = sky.best_direction()
        err = np.degrees(
            np.arccos(np.clip(best @ exposure.source_direction, -1, 1))
        )
        assert err < 15.0


class TestRenderAscii:
    def test_dimensions(self):
        from repro.localization.skymap import render_ascii

        rings = synthetic_rings(np.array([0.0, 0.0, 1.0]), seed=7)
        sky = compute_skymap(rings, SkyGrid.build(resolution_deg=4.0))
        art = render_ascii(sky, width=40, height=16)
        lines = art.split("\n")
        assert len(lines) == 16
        assert all(len(l) == 40 for l in lines)

    def test_marker_drawn(self):
        from repro.localization.skymap import render_ascii

        s = np.array([0.3, 0.2, 0.93])
        s /= np.linalg.norm(s)
        rings = synthetic_rings(s, seed=8)
        sky = compute_skymap(rings, SkyGrid.build(resolution_deg=4.0))
        art = render_ascii(sky, marker=s)
        assert "X" in art

    def test_peak_darker_than_background(self):
        from repro.localization.skymap import render_ascii

        rings = synthetic_rings(np.array([0.0, 0.0, 1.0]), n=150,
                                noise=0.01, seed=9)
        sky = compute_skymap(rings, SkyGrid.build(resolution_deg=2.0))
        art = render_ascii(sky, width=41, height=17)
        # The densest glyphs appear somewhere (the localization peak).
        assert any(c in art for c in "#@*")
