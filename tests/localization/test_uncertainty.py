"""Tests for Fisher-information localization-error prediction."""

import numpy as np
import pytest

from repro.localization.refinement import refine_source
from repro.localization.uncertainty import error_ellipse_deg, predicted_error_deg
from tests.localization.test_approximation import synthetic_rings
from tests.localization.test_likelihood import make_rings


class TestPredictedError:
    def test_scales_with_ring_width(self):
        s = np.array([0.0, 0.0, 1.0])
        sharp = synthetic_rings(s, n=60, noise=0.005, seed=0)
        fuzzy = make_rings(sharp.axis, sharp.eta, np.full(sharp.num_rings, 0.1))
        assert predicted_error_deg(sharp, s) < predicted_error_deg(fuzzy, s)

    def test_scales_with_ring_count(self):
        s = np.array([0.0, 0.0, 1.0])
        many = synthetic_rings(s, n=200, noise=0.01, seed=1)
        few = many.select(np.arange(many.num_rings) < 20)
        assert predicted_error_deg(many, s) < predicted_error_deg(few, s)

    def test_sqrt_n_scaling(self):
        """Quadrupling the ring count halves the predicted error."""
        s = np.array([0.0, 0.0, 1.0])
        big = synthetic_rings(s, n=400, noise=0.01, seed=2)
        small = big.select(np.arange(big.num_rings) < big.num_rings // 4)
        ratio = predicted_error_deg(small, s) / predicted_error_deg(big, s)
        assert ratio == pytest.approx(2.0, rel=0.25)

    def test_empty_rings_infinite(self):
        s = np.array([0.0, 0.0, 1.0])
        rings = synthetic_rings(s, seed=3)
        empty = rings.select(np.zeros(rings.num_rings, dtype=bool))
        assert predicted_error_deg(empty, s) == float("inf")

    def test_degenerate_geometry_infinite(self):
        """All rings sharing one axis constrain only one tangent direction."""
        axes = np.tile([0.0, 0.0, 1.0], (30, 1))
        rings = make_rings(axes, np.full(30, 0.5), np.full(30, 0.01))
        s = np.array([np.sqrt(0.75), 0.0, 0.5])
        assert predicted_error_deg(rings, s) == float("inf")

    def test_calibrated_against_actual_errors(self):
        """The prediction tracks the actual estimator scatter within ~3x."""
        s_true = np.array([0.1, -0.2, 0.97])
        s_true /= np.linalg.norm(s_true)
        actual, predicted = [], []
        for seed in range(25):
            rings = synthetic_rings(s_true, n=80, noise=0.02, seed=100 + seed)
            res = refine_source(rings, s_true + 0.01)
            err = np.degrees(
                np.arccos(np.clip(res.direction @ s_true, -1, 1))
            )
            actual.append(err)
            predicted.append(
                predicted_error_deg(rings, res.direction, used=res.used)
            )
        # Median actual error should be within a factor ~3 of the median
        # predicted 1-sigma radius (not exact: robust gating truncates).
        ratio = np.median(actual) / np.median(predicted)
        assert 1 / 3 < ratio < 3


class TestErrorEllipse:
    def test_major_at_least_minor(self):
        s = np.array([0.0, 0.0, 1.0])
        rings = synthetic_rings(s, n=60, noise=0.01, seed=4)
        major, minor = error_ellipse_deg(rings, s)
        assert major >= minor > 0

    def test_anisotropic_geometry_elongates(self):
        """Rings whose axes cluster in one plane constrain one direction
        better than the other."""
        rng = np.random.default_rng(5)
        s = np.array([0.0, 0.0, 1.0])
        # Axes mostly in the x-z plane.
        axes = np.stack(
            [
                rng.normal(0, 1.0, 100),
                rng.normal(0, 0.05, 100),
                rng.normal(0, 1.0, 100),
            ],
            axis=1,
        )
        axes /= np.linalg.norm(axes, axis=1, keepdims=True)
        etas = axes @ s
        rings = make_rings(axes, etas, np.full(100, 0.02))
        major, minor = error_ellipse_deg(rings, s)
        assert major > 2.0 * minor

    def test_consistent_with_circular_radius(self):
        s = np.array([0.0, 0.0, 1.0])
        rings = synthetic_rings(s, n=60, noise=0.01, seed=6)
        major, minor = error_ellipse_deg(rings, s)
        circ = predicted_error_deg(rings, s)
        assert circ == pytest.approx(np.sqrt(major * minor), rel=1e-6)
