"""Tests for the baseline localization pipeline."""

import numpy as np
import pytest

from repro.localization.pipeline import (
    BaselineConfig,
    localize_baseline,
    localize_rings,
    prepare_rings,
)
from repro.sources.grb import LABEL_GRB


class TestPrepareRings:
    def test_filtering_applied(self, events):
        from repro.reconstruction.rings import build_rings

        raw = build_rings(events)
        prepared = prepare_rings(events)
        assert 0 < prepared.num_rings < raw.num_rings

    def test_drop_background_oracle(self, events):
        rings = prepare_rings(events, drop_background=True)
        assert np.all(rings.labels == LABEL_GRB)

    def test_true_deta_oracle(self, events):
        rings = prepare_rings(events, true_deta=True)
        expected = np.maximum(rings.true_eta_errors(), 1e-4)
        assert np.allclose(rings.deta, expected)


class TestLocalizeRings:
    def test_empty_rings_fails_gracefully(self, rings):
        empty = rings.select(np.zeros(rings.num_rings, dtype=bool))
        out = localize_rings(empty, np.random.default_rng(0))
        assert out.direction is None

    def test_initial_seed_respected(self, rings):
        s0 = np.array([0.0, 0.0, 1.0])
        out = localize_rings(rings, np.random.default_rng(1), initial=s0)
        assert out.direction is not None

    def test_reseed_explores_fresh_seeds(self, rings):
        s0 = np.array([1.0, 0.0, 0.0])  # deliberately bad
        out = localize_rings(
            rings, np.random.default_rng(2), initial=s0, reseed=True
        )
        assert out.direction is not None


class TestLocalizeBaseline:
    def test_localizes_standard_exposure(self, events, exposure):
        out = localize_baseline(events, np.random.default_rng(3))
        err = out.error_degrees(exposure.source_direction)
        assert err < 30.0  # generous: single trial, with background

    def test_oracles_do_not_hurt(self, events, exposure):
        rng = np.random.default_rng(4)
        base = localize_baseline(events, np.random.default_rng(4))
        clean = localize_baseline(
            events, np.random.default_rng(4), drop_background=True
        )
        oracle = localize_baseline(
            events, np.random.default_rng(4), true_deta=True
        )
        s = exposure.source_direction
        assert oracle.error_degrees(s) <= base.error_degrees(s) + 1.0
        assert clean.error_degrees(s) <= base.error_degrees(s) + 1.0

    def test_error_degrees_failure_is_180(self):
        from repro.localization.pipeline import LocalizationOutcome
        from tests.localization.test_likelihood import make_rings

        out = LocalizationOutcome(
            direction=None,
            rings=make_rings([[0, 0, 1]], [0.5], [0.1]),
            used=np.zeros(1, dtype=bool),
            iterations=0,
            converged=False,
        )
        assert out.error_degrees(np.array([0.0, 0.0, 1.0])) == 180.0

    def test_error_degrees_math(self):
        from repro.localization.pipeline import LocalizationOutcome
        from tests.localization.test_likelihood import make_rings

        out = LocalizationOutcome(
            direction=np.array([1.0, 0.0, 0.0]),
            rings=make_rings([[0, 0, 1]], [0.5], [0.1]),
            used=np.ones(1, dtype=bool),
            iterations=1,
            converged=True,
        )
        assert out.error_degrees(np.array([0.0, 1.0, 0.0])) == pytest.approx(90.0)
        assert out.error_degrees(np.array([1.0, 0.0, 0.0])) == pytest.approx(0.0)
