"""Tests for robust iterative refinement."""

import numpy as np
import pytest

from repro.localization.refinement import RefinementConfig, refine_source
from tests.localization.test_approximation import synthetic_rings
from tests.localization.test_likelihood import make_rings


class TestRefineSource:
    def test_exact_recovery_clean_rings(self):
        s_true = np.array([0.1, 0.2, 0.97])
        s_true /= np.linalg.norm(s_true)
        rings = synthetic_rings(s_true, n=100, noise=0.005, seed=0)
        start = s_true + np.array([0.05, -0.03, 0.0])
        res = refine_source(rings, start)
        err = np.degrees(np.arccos(np.clip(res.direction @ s_true, -1, 1)))
        assert err < 0.5
        assert res.converged

    def test_robust_to_outlier_rings(self):
        s_true = np.array([0.0, 0.0, 1.0])
        rng = np.random.default_rng(1)
        good = synthetic_rings(s_true, n=80, noise=0.01, seed=1)
        # Outliers: random rings unrelated to the source.
        axes = rng.normal(size=(40, 3))
        axes /= np.linalg.norm(axes, axis=1, keepdims=True)
        bad = make_rings(axes, rng.uniform(-0.9, 0.9, 40), np.full(40, 0.01))
        import dataclasses

        merged = make_rings(
            np.concatenate([good.axis, bad.axis]),
            np.concatenate([good.eta, bad.eta]),
            np.concatenate([good.deta, bad.deta]),
        )
        res = refine_source(merged, s_true + 0.02)
        err = np.degrees(np.arccos(np.clip(res.direction @ s_true, -1, 1)))
        assert err < 1.0
        # The gate should have excluded most outliers.
        assert res.used[: good.num_rings].mean() > 0.8
        assert res.used[good.num_rings :].mean() < 0.3

    def test_min_rings_fallback(self):
        """When the gate would keep too few rings, the best min_rings are
        used instead of an empty set."""
        s_true = np.array([0.0, 0.0, 1.0])
        rings = synthetic_rings(s_true, n=6, noise=0.01, seed=2)
        # Start very far: all residuals exceed the gate initially.
        start = np.array([1.0, 0.0, 0.0])
        cfg = RefinementConfig(min_rings=5)
        res = refine_source(rings, start, cfg)
        assert res.used.sum() >= min(5, rings.num_rings)

    def test_empty_rings(self):
        rings = synthetic_rings(np.array([0.0, 0.0, 1.0]))
        empty = rings.select(np.zeros(rings.num_rings, dtype=bool))
        start = np.array([0.0, 0.0, 1.0])
        res = refine_source(empty, start)
        assert np.allclose(res.direction, start)
        assert not res.converged

    def test_result_unit_norm(self):
        rings = synthetic_rings(np.array([0.0, 0.0, 1.0]), seed=3)
        res = refine_source(rings, np.array([0.1, 0.1, 0.9]))
        assert np.linalg.norm(res.direction) == pytest.approx(1.0)

    def test_iteration_cap(self):
        rings = synthetic_rings(np.array([0.0, 0.0, 1.0]), seed=4)
        cfg = RefinementConfig(max_iterations=2, tol_deg=1e-12)
        res = refine_source(rings, np.array([1.0, 0.0, 0.0]), cfg)
        assert res.iterations <= 2

    def test_weighting_prefers_narrow_rings(self):
        """Two inconsistent ring families; the narrower family wins."""
        s_a = np.array([0.0, 0.0, 1.0])
        s_b = np.array([np.sin(np.deg2rad(25)), 0.0, np.cos(np.deg2rad(25))])
        narrow = synthetic_rings(s_a, n=40, noise=0.01, seed=10)
        wide_src = synthetic_rings(s_b, n=40, noise=0.01, seed=11)
        wide = make_rings(
            wide_src.axis, wide_src.eta, np.full(wide_src.num_rings, 0.4)
        )
        merged = make_rings(
            np.concatenate([narrow.axis, wide.axis]),
            np.concatenate([narrow.eta, wide.eta]),
            np.concatenate([narrow.deta, wide.deta]),
        )
        # Start midway between the two hypotheses.
        mid = s_a + s_b
        res = refine_source(merged, mid / np.linalg.norm(mid))
        err_a = np.degrees(np.arccos(np.clip(res.direction @ s_a, -1, 1)))
        err_b = np.degrees(np.arccos(np.clip(res.direction @ s_b, -1, 1)))
        assert err_a < err_b
