"""Tests for the GRB plane-wave source."""

import numpy as np
import pytest

from repro.physics.transport import transport_photons
from repro.sources.grb import (
    GRBSource,
    LABEL_GRB,
    PhotonBatch,
    direction_from_angles,
)


class TestDirectionFromAngles:
    def test_zenith(self):
        assert np.allclose(direction_from_angles(0.0), [0, 0, 1])

    def test_horizon(self):
        d = direction_from_angles(90.0, 0.0)
        assert np.allclose(d, [1, 0, 0], atol=1e-12)

    def test_azimuth_rotation(self):
        d = direction_from_angles(90.0, 90.0)
        assert np.allclose(d, [0, 1, 0], atol=1e-12)

    def test_unit_norm(self):
        for polar in [0, 15, 45, 80]:
            for az in [0, 90, 200]:
                assert np.linalg.norm(
                    direction_from_angles(polar, az)
                ) == pytest.approx(1.0)


class TestGRBSource:
    def test_invalid_fluence(self):
        with pytest.raises(ValueError):
            GRBSource(fluence_mev_cm2=0.0)

    def test_invalid_polar(self):
        with pytest.raises(ValueError):
            GRBSource(polar_angle_deg=95.0)

    def test_expected_photons_scales_with_fluence(self, geometry):
        lo = GRBSource(fluence_mev_cm2=1.0).expected_photons(geometry)
        hi = GRBSource(fluence_mev_cm2=3.0).expected_photons(geometry)
        assert hi == pytest.approx(3.0 * lo)

    def test_generate_shapes_and_labels(self, geometry):
        rng = np.random.default_rng(0)
        batch = GRBSource().generate(geometry, rng, n_photons=100)
        assert batch.origins.shape == (100, 3)
        assert batch.directions.shape == (100, 3)
        assert np.all(batch.labels == LABEL_GRB)
        assert batch.source_direction is not None

    def test_beam_is_antiparallel_to_source(self, geometry):
        rng = np.random.default_rng(1)
        src = GRBSource(polar_angle_deg=35.0, azimuth_deg=120.0)
        batch = src.generate(geometry, rng, n_photons=10)
        assert np.allclose(batch.directions, -src.source_direction)

    def test_times_within_lightcurve(self, geometry):
        rng = np.random.default_rng(2)
        batch = GRBSource().generate(geometry, rng, n_photons=500)
        assert batch.times.min() >= 0.0
        assert batch.times.max() <= 1.0

    def test_plane_covers_detector(self, geometry):
        """At every polar angle a plane-wave batch actually illuminates
        the detector: a healthy fraction of photons hit scintillator."""
        for polar in [0.0, 40.0, 80.0]:
            rng = np.random.default_rng(3)
            src = GRBSource(fluence_mev_cm2=1.0, polar_angle_deg=polar)
            batch = src.generate(geometry, rng, n_photons=4000)
            res = transport_photons(
                geometry, batch.origins, batch.directions, batch.energies, rng
            )
            assert (res.num_interactions > 0).mean() > 0.05

    def test_poisson_count_near_mean(self, geometry):
        rng = np.random.default_rng(4)
        src = GRBSource(fluence_mev_cm2=1.0)
        expected = src.expected_photons(geometry)
        batch = src.generate(geometry, rng)
        assert batch.num_photons == pytest.approx(expected, rel=0.1)


class TestPhotonBatch:
    def test_concatenate_lengths(self, geometry):
        rng = np.random.default_rng(5)
        a = GRBSource().generate(geometry, rng, n_photons=10)
        b = GRBSource().generate(geometry, rng, n_photons=20)
        c = PhotonBatch.concatenate([a, b])
        assert c.num_photons == 30

    def test_concatenate_keeps_source(self, geometry):
        rng = np.random.default_rng(6)
        a = GRBSource(polar_angle_deg=10.0).generate(geometry, rng, n_photons=5)
        c = PhotonBatch.concatenate([a])
        assert np.allclose(c.source_direction, a.source_direction)

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            PhotonBatch.concatenate([])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            PhotonBatch(
                origins=np.zeros((3, 3)),
                directions=np.zeros((2, 3)),
                energies=np.zeros(3),
                times=np.zeros(3),
                labels=np.zeros(3, dtype=np.int64),
            )
