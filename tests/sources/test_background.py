"""Tests for the atmospheric background model."""

import numpy as np
import pytest

from repro.sources.background import BackgroundModel
from repro.sources.grb import LABEL_BACKGROUND


class TestBackgroundModel:
    def test_invalid_flux(self):
        with pytest.raises(ValueError):
            BackgroundModel(flux_per_cm2_s=-1.0)

    def test_invalid_cos_range(self):
        with pytest.raises(ValueError):
            BackgroundModel(cos_polar_min=1.5)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            BackgroundModel(duration_s=0.0)

    def test_expected_scales_with_flux_and_duration(self, geometry):
        base = BackgroundModel(flux_per_cm2_s=10.0).expected_photons(geometry)
        double_flux = BackgroundModel(flux_per_cm2_s=20.0).expected_photons(geometry)
        double_time = BackgroundModel(
            flux_per_cm2_s=10.0, duration_s=2.0
        ).expected_photons(geometry)
        assert double_flux == pytest.approx(2 * base)
        assert double_time == pytest.approx(2 * base)

    def test_labels(self, geometry):
        rng = np.random.default_rng(0)
        batch = BackgroundModel().generate(geometry, rng, n_photons=50)
        assert np.all(batch.labels == LABEL_BACKGROUND)
        assert batch.source_direction is None

    def test_arrival_cos_range(self, geometry):
        rng = np.random.default_rng(1)
        model = BackgroundModel(cos_polar_min=-0.5)
        batch = model.generate(geometry, rng, n_photons=5000)
        # Beam = -source vector, so beam_z in [-1, 0.5].
        assert batch.directions[:, 2].max() <= 0.5 + 1e-9
        assert batch.directions[:, 2].min() >= -1.0

    def test_directions_unit_norm(self, geometry):
        rng = np.random.default_rng(2)
        batch = BackgroundModel().generate(geometry, rng, n_photons=500)
        assert np.allclose(np.linalg.norm(batch.directions, axis=1), 1.0)

    def test_azimuthal_symmetry(self, geometry):
        rng = np.random.default_rng(3)
        batch = BackgroundModel().generate(geometry, rng, n_photons=20000)
        assert abs(batch.directions[:, 0].mean()) < 0.02
        assert abs(batch.directions[:, 1].mean()) < 0.02

    def test_times_within_duration(self, geometry):
        rng = np.random.default_rng(4)
        model = BackgroundModel(duration_s=1.0)
        batch = model.generate(geometry, rng, n_photons=500)
        assert batch.times.min() >= 0.0 and batch.times.max() <= 1.0

    def test_ring_ratio_calibration(self, geometry, response):
        """The default flux yields the paper's 2-3x background:GRB ring
        ratio for a 1 MeV/cm^2 burst (averaged over a few exposures)."""
        from repro.localization.pipeline import prepare_rings
        from repro.sources.exposure import simulate_exposure
        from repro.sources.grb import GRBSource, LABEL_GRB

        ratios = []
        for seed in range(4):
            rng = np.random.default_rng(seed)
            exp = simulate_exposure(
                geometry, rng, GRBSource(fluence_mev_cm2=1.0), BackgroundModel()
            )
            events = response.digitize(exp.transport, exp.batch, rng, min_hits=2)
            rings = prepare_rings(events)
            n_grb = int((rings.labels == LABEL_GRB).sum())
            ratios.append((rings.num_rings - n_grb) / max(n_grb, 1))
        mean_ratio = float(np.mean(ratios))
        assert 1.8 < mean_ratio < 4.2
