"""Tests for the short-GRB population model."""

import numpy as np
import pytest

from repro.sources.catalog import PopulationModel


class TestSampling:
    def test_fluence_bounds(self):
        model = PopulationModel()
        rng = np.random.default_rng(0)
        f = model.sample_fluence(5000, rng)
        assert f.min() >= model.fluence_min
        assert f.max() <= model.fluence_max

    def test_fluence_logn_logs_slope(self):
        """Cumulative counts follow N(>F) ~ F^-1.5 between bounds."""
        model = PopulationModel(fluence_min=0.2, fluence_max=200.0)
        rng = np.random.default_rng(1)
        f = model.sample_fluence(200_000, rng)
        n1 = (f > 0.5).sum()
        n2 = (f > 2.0).sum()
        measured_slope = np.log(n2 / n1) / np.log(2.0 / 0.5)
        assert measured_slope == pytest.approx(-1.5, abs=0.1)

    def test_dim_bursts_dominate(self):
        model = PopulationModel()
        rng = np.random.default_rng(2)
        f = model.sample_fluence(10000, rng)
        assert np.median(f) < 1.0

    def test_duration_truncated(self):
        model = PopulationModel()
        rng = np.random.default_rng(3)
        d = model.sample_duration(5000, rng)
        assert d.min() >= 0.01
        assert d.max() <= 2.0

    def test_directions_isotropic_within_cone(self):
        model = PopulationModel(max_polar_deg=85.0)
        rng = np.random.default_rng(4)
        polar, azimuth = model.sample_direction(20000, rng)
        assert polar.max() <= 85.0
        assert azimuth.min() >= 0.0 and azimuth.max() <= 360.0
        # Isotropy: cos(polar) uniform on [cos(85), 1].
        cos_p = np.cos(np.deg2rad(polar))
        hist, _ = np.histogram(cos_p, bins=10,
                               range=(np.cos(np.deg2rad(85.0)), 1.0))
        assert hist.std() / hist.mean() < 0.08


class TestSampleBurst:
    def test_burst_is_simulatable(self, geometry):
        model = PopulationModel()
        rng = np.random.default_rng(5)
        burst = model.sample_burst(rng)
        assert burst.fluence_mev_cm2 > 0
        assert 0 <= burst.polar_angle_deg < 90
        batch = burst.generate(geometry, rng, n_photons=50)
        assert batch.num_photons == 50

    def test_population_diversity(self):
        model = PopulationModel()
        rng = np.random.default_rng(6)
        bursts = model.sample_population(50, rng)
        fluences = {b.fluence_mev_cm2 for b in bursts}
        assert len(fluences) == 50

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            PopulationModel().sample_population(-1, np.random.default_rng(7))

    def test_end_to_end_localization(self, geometry, response):
        """A bright population burst localizes through the full chain."""
        from repro.localization.pipeline import localize_baseline
        from repro.sources.exposure import simulate_exposure

        model = PopulationModel(fluence_min=2.0, fluence_max=5.0)
        rng = np.random.default_rng(8)
        burst = model.sample_burst(rng)
        exp = simulate_exposure(geometry, rng, burst)
        ev = response.digitize(exp.transport, exp.batch, rng, min_hits=2)
        out = localize_baseline(ev, rng)
        assert out.error_degrees(burst.source_direction) < 10.0
