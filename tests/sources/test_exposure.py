"""Tests for exposure assembly."""

import numpy as np
import pytest

from repro.sources.background import BackgroundModel
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource, LABEL_BACKGROUND, LABEL_GRB


class TestSimulateExposure:
    def test_requires_a_source(self, geometry):
        with pytest.raises(ValueError):
            simulate_exposure(geometry, np.random.default_rng(0))

    def test_grb_only(self, geometry):
        rng = np.random.default_rng(1)
        exp = simulate_exposure(geometry, rng, grb=GRBSource())
        assert np.all(exp.batch.labels == LABEL_GRB)
        assert exp.source_direction is not None

    def test_background_only(self, geometry):
        rng = np.random.default_rng(2)
        exp = simulate_exposure(geometry, rng, background=BackgroundModel())
        assert np.all(exp.batch.labels == LABEL_BACKGROUND)
        assert exp.source_direction is None

    def test_combined_labels_ordered(self, geometry):
        rng = np.random.default_rng(3)
        exp = simulate_exposure(
            geometry, rng, grb=GRBSource(), background=BackgroundModel()
        )
        labels = exp.batch.labels
        # GRB photons first, then background.
        first_bkg = np.argmax(labels == LABEL_BACKGROUND)
        assert np.all(labels[:first_bkg] == LABEL_GRB)
        assert np.all(labels[first_bkg:] == LABEL_BACKGROUND)

    def test_hit_labels_consistent(self, exposure):
        hit_labels = exposure.hit_labels()
        assert hit_labels.shape[0] == exposure.transport.num_hits
        expected = exposure.batch.labels[exposure.transport.photon_index]
        assert np.array_equal(hit_labels, expected)

    def test_transport_covers_batch(self, exposure):
        assert exposure.transport.num_photons == exposure.batch.num_photons
