"""Tests for light-curve models."""

import numpy as np
import pytest

from repro.sources.lightcurve import FREDLightCurve, UniformLightCurve


class TestUniform:
    def test_within_duration(self):
        lc = UniformLightCurve(duration_s=2.0)
        t = lc.sample(1000, np.random.default_rng(0))
        assert t.min() >= 0.0 and t.max() <= 2.0

    def test_uniformity(self):
        lc = UniformLightCurve(duration_s=1.0)
        t = lc.sample(50000, np.random.default_rng(1))
        hist, _ = np.histogram(t, bins=10, range=(0, 1))
        assert hist.std() / hist.mean() < 0.05

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            UniformLightCurve(duration_s=-1.0)


class TestFRED:
    def test_within_duration(self):
        lc = FREDLightCurve(duration_s=1.0)
        t = lc.sample(1000, np.random.default_rng(2))
        assert t.min() >= 0.0 and t.max() <= 1.0

    def test_rise_then_decay(self):
        """Mode of arrival times sits early but not at zero."""
        lc = FREDLightCurve(duration_s=1.0, t_rise_s=0.05, t_decay_s=0.25)
        t = lc.sample(100000, np.random.default_rng(3))
        hist, edges = np.histogram(t, bins=50, range=(0, 1))
        mode = 0.5 * (edges[np.argmax(hist)] + edges[np.argmax(hist) + 1])
        assert 0.05 < mode < 0.6
        # Decay: late-time bins much emptier than the mode.
        assert hist[-1] < 0.25 * hist.max()

    def test_invalid_timescales(self):
        with pytest.raises(ValueError):
            FREDLightCurve(t_rise_s=0.0)
