"""Meta-test: every public item in the library carries a docstring.

Guards the documentation deliverable — public modules, classes, and
functions (anything not underscore-prefixed) must be documented.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        # Only enforce on items defined in this package (re-exports are
        # checked where they are defined).
        if getattr(obj, "__module__", "") != module.__name__:
            continue
        if not inspect.getdoc(obj):
            undocumented.append(name)
        elif inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                # A method counts as documented if it, or the protocol
                # method it overrides anywhere in the MRO, carries a doc.
                documented = any(
                    inspect.getdoc(getattr(base, meth_name, None))
                    for base in obj.__mro__
                    if hasattr(base, meth_name)
                )
                if not documented:
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )
