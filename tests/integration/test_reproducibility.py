"""Reproducibility guarantees across the stack.

Determinism from explicit generators is a core design contract: every
stochastic API takes a ``numpy.random.Generator`` and identical seeds
must give bit-identical results, including across worker counts.
"""

import numpy as np
import pytest

from repro.detector.response import DetectorResponse
from repro.geometry.tiles import adapt_geometry
from repro.localization.pipeline import localize_baseline
from repro.sources.background import BackgroundModel
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource


class TestDeterminism:
    def test_exposure_bit_identical(self, geometry):
        def run():
            rng = np.random.default_rng(1234)
            return simulate_exposure(
                geometry, rng, GRBSource(), BackgroundModel()
            )

        a, b = run(), run()
        assert np.array_equal(a.transport.positions, b.transport.positions)
        assert np.array_equal(a.transport.energies, b.transport.energies)
        assert np.array_equal(a.batch.energies, b.batch.energies)

    def test_digitization_bit_identical(self, exposure, response):
        a = response.digitize(
            exposure.transport, exposure.batch, np.random.default_rng(7),
            min_hits=2,
        )
        b = response.digitize(
            exposure.transport, exposure.batch, np.random.default_rng(7),
            min_hits=2,
        )
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.energies, b.energies)

    def test_localization_deterministic(self, events):
        a = localize_baseline(events, np.random.default_rng(9))
        b = localize_baseline(events, np.random.default_rng(9))
        assert np.array_equal(a.direction, b.direction)
        assert a.iterations == b.iterations

    def test_training_deterministic(self, training_data):
        from repro.models.deta import DEtaTrainConfig, train_deta_net

        grb = training_data.grb_only()
        cfg = DEtaTrainConfig(hidden_widths=(4,), max_epochs=3, patience=3)
        a = train_deta_net(
            grb.features, grb.true_eta_errors, np.random.default_rng(3), cfg
        )
        b = train_deta_net(
            grb.features, grb.true_eta_errors, np.random.default_rng(3), cfg
        )
        assert np.allclose(
            a.predict_log_deta(grb.features), b.predict_log_deta(grb.features)
        )

    def test_trials_worker_count_invariant(self, geometry, response):
        """run_trials gives identical errors serial vs pooled (seeds are
        pre-spawned, so scheduling cannot matter)."""
        from repro.experiments.trials import TrialConfig, run_trials

        serial = run_trials(
            geometry, response, seed=5, n_trials=4,
            config=TrialConfig(), n_workers=1,
        )
        pooled = run_trials(
            geometry, response, seed=5, n_trials=4,
            config=TrialConfig(), n_workers=2,
        )
        assert np.array_equal(serial, pooled)
