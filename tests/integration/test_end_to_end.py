"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro.detector.perturb import perturb_events
from repro.localization.pipeline import localize_baseline
from repro.sources.background import BackgroundModel
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource


class TestFullChain:
    def test_clean_burst_localizes_accurately(self, geometry, response):
        """No background: a 1 MeV/cm^2 burst localizes to a few degrees."""
        rng = np.random.default_rng(0)
        grb = GRBSource(fluence_mev_cm2=1.0, polar_angle_deg=30.0, azimuth_deg=200.0)
        exp = simulate_exposure(geometry, rng, grb)
        ev = response.digitize(exp.transport, exp.batch, rng, min_hits=2)
        out = localize_baseline(ev, rng)
        assert out.error_degrees(grb.source_direction) < 5.0

    def test_bright_burst_beats_dim_burst(self, geometry, response):
        errs = {}
        for fluence in (4.0, 1.0):
            trial_errs = []
            for seed in range(4):
                rng = np.random.default_rng(100 + seed)
                grb = GRBSource(fluence_mev_cm2=fluence)
                exp = simulate_exposure(geometry, rng, grb, BackgroundModel())
                ev = response.digitize(exp.transport, exp.batch, rng, min_hits=2)
                out = localize_baseline(ev, rng)
                trial_errs.append(out.error_degrees(grb.source_direction))
            errs[fluence] = np.median(trial_errs)
        assert errs[4.0] <= errs[1.0] + 1.0

    def test_ml_pipeline_end_to_end(self, geometry, response, tiny_models):
        """Simulate, digitize, run the full Fig. 6 pipeline, check output."""
        rng = np.random.default_rng(7)
        grb = GRBSource(fluence_mev_cm2=2.0, polar_angle_deg=10.0, azimuth_deg=45.0)
        exp = simulate_exposure(geometry, rng, grb, BackgroundModel())
        ev = response.digitize(exp.transport, exp.batch, rng, min_hits=2)
        out = tiny_models.localize(ev, rng)
        assert out.error_degrees(grb.source_direction) < 15.0

    def test_perturbation_degrades_gracefully(self, geometry, response):
        rng = np.random.default_rng(9)
        grb = GRBSource(fluence_mev_cm2=2.0)
        exp = simulate_exposure(geometry, rng, grb)
        ev = response.digitize(exp.transport, exp.batch, rng, min_hits=2)
        clean = localize_baseline(ev, np.random.default_rng(1))
        noisy_ev = perturb_events(ev, 10.0, rng)
        noisy = localize_baseline(noisy_ev, np.random.default_rng(1))
        s = grb.source_direction
        # Perturbed data still localizes (not a 180-degree failure).
        assert noisy.error_degrees(s) < 60.0
        assert clean.error_degrees(s) <= noisy.error_degrees(s) + 5.0

    def test_off_axis_burst(self, geometry, response):
        rng = np.random.default_rng(11)
        grb = GRBSource(fluence_mev_cm2=2.0, polar_angle_deg=70.0, azimuth_deg=10.0)
        exp = simulate_exposure(geometry, rng, grb)
        ev = response.digitize(exp.transport, exp.batch, rng, min_hits=2)
        out = localize_baseline(ev, rng)
        assert out.error_degrees(grb.source_direction) < 10.0


class TestQuantizedEndToEnd:
    def test_int8_pipeline_localizes(self, geometry, response, training_data):
        """Swapped training -> QAT -> INT8 -> full pipeline on a burst."""
        from repro.models.background import (
            BackgroundTrainConfig,
            train_background_net,
        )
        from repro.models.deta import DEtaTrainConfig, train_deta_net
        from repro.models.quantized import quantize_background_net
        from repro.pipeline.ml_pipeline import MLPipeline
        from repro.sources.grb import LABEL_BACKGROUND

        rng = np.random.default_rng(21)
        data = training_data
        labels = (data.labels == LABEL_BACKGROUND).astype(float)
        swapped = train_background_net(
            data.features, labels, data.polar_true, rng,
            config=BackgroundTrainConfig(
                hidden_widths=(32, 16), max_epochs=15, patience=6, swapped=True
            ),
        )
        int8_net = quantize_background_net(
            swapped, data.features, labels, data.polar_true, rng, qat_epochs=2
        )
        grb_rings = data.grb_only()
        dnet = train_deta_net(
            grb_rings.features, grb_rings.true_eta_errors, rng,
            config=DEtaTrainConfig(hidden_widths=(8, 8), max_epochs=15, patience=6),
        )
        pipeline = MLPipeline(background_net=int8_net, deta_net=dnet)

        grb = GRBSource(fluence_mev_cm2=2.0, polar_angle_deg=20.0)
        exp = simulate_exposure(geometry, rng, grb, BackgroundModel())
        ev = response.digitize(exp.transport, exp.batch, rng, min_hits=2)
        out = pipeline.localize(ev, rng)
        assert out.direction is not None
        assert out.error_degrees(grb.source_direction) < 20.0
