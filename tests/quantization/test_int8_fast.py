"""The fast INT8 kernel is bitwise-identical to the retained reference.

Two layers of evidence:

* **Kernel parity** — ``forward_int`` against ``_reference_forward_int``
  over random layers (per-tensor and per-channel, with and without
  ReLU, degenerate shapes, full uint8 input grid), plus chain-level
  parity through ``QuantizedMLP.forward_reference``.
* **Fixed-point requantization semantics** — an exhaustive int32
  accumulator sweep proving ``round((acc * m) * 2**-s)`` reproduces the
  float-multiplier reference ``round(acc * M)`` bit for bit, including
  round-to-nearest-even ties, clipping, zero-point shift, and the
  quantized ReLU.
"""

import pickle

import numpy as np
import pytest

from repro.quantization.fake_quant import (
    UINT8_MAX,
    UINT8_MIN,
    quantize,
    quantize_affine_params,
)
from repro.quantization.int8 import (
    QuantizedLinear,
    QuantizedMLP,
    _fixed_point_requant_params,
)


def _layer(seed, n_in=13, n_out=32, per_channel=True, relu=True,
           in_zp=128, out_zp=128):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(n_in, n_out)) * rng.uniform(0.01, 3.0, size=n_out)
    if per_channel:
        w_scale = np.maximum(np.abs(w).max(axis=0), 1e-12) / 127.0
    else:
        w_scale = float(np.abs(w).max() / 127.0)
    return QuantizedLinear.from_float(
        weight=w,
        bias=rng.normal(size=n_out),
        weight_scale=w_scale,
        in_scale=0.04,
        in_zero_point=in_zp,
        out_scale=0.07,
        out_zero_point=out_zp,
        relu=relu,
    )


def _inputs(seed, rows, n_in):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(rows, n_in)) * 2.0
    return quantize(x, 0.04, 128, UINT8_MIN, UINT8_MAX)


class TestKernelBitParity:
    @pytest.mark.parametrize("per_channel", [False, True])
    @pytest.mark.parametrize("relu", [False, True])
    def test_forward_int_matches_reference(self, per_channel, relu):
        layer = _layer(1, per_channel=per_channel, relu=relu)
        x_q = _inputs(2, 597, 13)
        np.testing.assert_array_equal(
            layer.forward_int(x_q), layer._reference_forward_int(x_q)
        )

    def test_full_uint8_grid(self):
        """Every representable input value, against every weight column."""
        layer = _layer(3, n_in=1, n_out=16)
        x_q = np.arange(UINT8_MIN, UINT8_MAX + 1, dtype=np.int32)[:, None]
        np.testing.assert_array_equal(
            layer.forward_int(x_q), layer._reference_forward_int(x_q)
        )

    @pytest.mark.parametrize("rows", [0, 1])
    def test_edge_batches(self, rows):
        layer = _layer(4)
        x_q = _inputs(5, rows, 13)
        np.testing.assert_array_equal(
            layer.forward_int(x_q), layer._reference_forward_int(x_q)
        )

    def test_nonuniform_zero_points(self):
        layer = _layer(6, in_zp=3, out_zp=250, relu=True)
        x_q = _inputs(7, 256, 13)
        np.testing.assert_array_equal(
            layer.forward_int(x_q), layer._reference_forward_int(x_q)
        )

    def test_per_channel_vs_per_tensor_shapes(self):
        """Both multiplier shapes flow through the same fused pass."""
        for per_channel in (False, True):
            layer = _layer(8, per_channel=per_channel)
            expect_dim = 1 if per_channel else 0
            assert np.ndim(layer.requant_multiplier) == expect_dim
            assert layer._requant_mult.ndim == expect_dim
            x_q = _inputs(9, 64, 13)
            np.testing.assert_array_equal(
                layer.forward_int(x_q), layer._reference_forward_int(x_q)
            )

    def test_mlp_chain_matches_reference_chain(self):
        rng = np.random.default_rng(10)
        layers = [
            _layer(11, n_in=13, n_out=32),
            _layer(12, n_in=32, n_out=16),
            _layer(13, n_in=16, n_out=1, relu=False),
        ]
        in_scale, in_zp = quantize_affine_params(-3.0, 3.0)
        mlp = QuantizedMLP(
            input_scale=in_scale, input_zero_point=in_zp, layers=layers
        )
        x = rng.normal(size=(597, 13))
        np.testing.assert_array_equal(
            mlp.forward(x), mlp.forward_reference(x)
        )


class TestConstructionCaches:
    def test_weight_cache_typed_and_contiguous(self):
        layer = _layer(14)
        assert layer._weight_f.dtype == layer._gemm_dtype
        assert layer._weight_f.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(layer._weight_f, layer.weight_q)

    def test_narrow_layer_uses_float32_gemm(self):
        # bound = 1 * 255 * |w|max <= 255*127 < 2**24: sgemm territory.
        layer = _layer(15, n_in=1)
        assert layer._exact_gemm
        assert layer._gemm_dtype == np.float32

    def test_wide_bound_promotes_to_float64(self):
        # 2000 * 128 * ~127 ~= 32M > 2**24: the float32 mantissa can no
        # longer hold every partial sum, so dgemm must be chosen (still
        # exact: far below 2**53).
        layer = _layer(16, n_in=2000, n_out=4)
        assert layer._gemm_dtype == np.float64
        assert layer._exact_gemm

    def test_pickle_roundtrip_rebuilds_caches_and_stays_bitwise(self):
        layer = _layer(17)
        blob = pickle.dumps(layer)
        clone = pickle.loads(blob)
        assert clone._weight_f.dtype == layer._weight_f.dtype
        x_q = _inputs(18, 128, 13)
        np.testing.assert_array_equal(
            clone.forward_int(x_q), layer.forward_int(x_q)
        )

    def test_pickle_payload_excludes_caches(self):
        layer = _layer(19)
        state = layer.__getstate__()
        assert "_weight_f" not in state
        assert "_requant_mult" not in state


class TestFixedPointRequant:
    """Exhaustive accumulator sweeps of the requantization semantics."""

    #: Every int32 accumulator magnitude the 8-bit path can reach is
    #: covered by sweeping dense low ranges plus log-spaced extremes.
    def _accumulators(self):
        dense = np.arange(-70000, 70000, dtype=np.int64)
        big = np.unique(
            np.round(
                np.geomspace(70000, 2**31 - 1, 4000)
            ).astype(np.int64)
        )
        return np.concatenate([dense, big, -big, [2**31 - 1, -(2**31)]])

    @pytest.mark.parametrize(
        "multiplier",
        [3.0517578125e-05, 7.218954822e-04, 0.0312498871, 0.4999999999, 1.0],
    )
    def test_decomposition_matches_float_reference_bitwise(self, multiplier):
        acc = self._accumulators()
        m, s, scale = _fixed_point_requant_params(np.float64(multiplier))
        assert float(m) == float(m).__trunc__()  # integer significand
        np.testing.assert_array_equal(scale, np.ldexp(1.0, -int(s)))
        fixed = np.rint((acc * m) * scale)
        ref = np.round(acc * np.float64(multiplier))
        np.testing.assert_array_equal(fixed, ref)

    def test_round_half_to_even_ties(self):
        """M = 0.5 makes every odd accumulator a .5 tie: banker's
        rounding must match np.round exactly."""
        acc = np.arange(-1001, 1001, dtype=np.int64)
        m, _, scale = _fixed_point_requant_params(np.float64(0.5))
        np.testing.assert_array_equal(
            np.rint((acc * m) * scale), np.round(acc * 0.5)
        )

    def test_degenerate_multiplier_falls_back(self):
        m, s, scale = _fixed_point_requant_params(np.float64(1e-300))
        assert int(s) == 0 and float(scale) == 1.0
        assert float(m) == 1e-300

    @pytest.mark.parametrize("relu", [False, True])
    @pytest.mark.parametrize("out_zp", [0, 128, 255])
    def test_clip_zero_point_relu_semantics(self, relu, out_zp):
        """One-feature layer driven so accumulators sweep a wide range:
        the fused pass must reproduce clamp(round(acc*M)+zy) and the
        quantized ReLU exactly."""
        layer = QuantizedLinear(
            weight_q=np.array([[1]], dtype=np.int8),
            bias_q=np.array([0], dtype=np.int32),
            in_zero_point=0,
            requant_multiplier=1.7,  # pushes past both clip edges
            out_zero_point=out_zp,
            relu=relu,
            out_float_scale=0.1,
        )
        x_q = np.arange(UINT8_MIN, UINT8_MAX + 1, dtype=np.int32)[:, None]
        out = layer.forward_int(x_q)
        ref = layer._reference_forward_int(x_q)
        np.testing.assert_array_equal(out, ref)
        assert out.min() >= (out_zp if relu else UINT8_MIN)
        assert out.max() <= UINT8_MAX

    def test_inexact_gemm_bound_falls_back_to_reference(self):
        """A layer violating the float64 exactness bound must route
        every call to the reference kernel (synthetic: real calibrated
        layers never get within orders of magnitude of 2**53)."""
        layer = _layer(20)
        assert layer._exact_gemm
        layer._exact_gemm = False  # as _build_caches would set it when
        # in_width * max|x-zx| * max|W| >= 2**53
        x_q = _inputs(21, 32, 13)
        np.testing.assert_array_equal(
            layer.forward_int(x_q), layer._reference_forward_int(x_q)
        )
