"""Tests for QAT preparation and the INT8 integer engine."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.losses import MSELoss
from repro.nn.optim import SGD
from repro.nn.train import Trainer
from repro.quantization.fake_quant import FakeQuantize
from repro.quantization.qat import QATLinear, convert_to_int8, prepare_qat


def fused_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(6, 12, rng), ReLU(), Linear(12, 1, rng))


def calibrated_qat(seed=0, n=2000):
    rng = np.random.default_rng(seed)
    model = fused_model(seed)
    qat = prepare_qat(model)
    qat.train()
    x = rng.normal(size=(n, 6))
    qat.forward(x)
    qat.eval()
    return qat, x


class TestPrepareQAT:
    def test_structure(self):
        qat = prepare_qat(fused_model())
        assert isinstance(qat[0], FakeQuantize)
        assert isinstance(qat[1], QATLinear)
        assert isinstance(qat[2], ReLU)
        assert isinstance(qat[3], QATLinear)

    def test_rejects_unfused_modules(self):
        from repro.nn.layers import BatchNorm1d

        with pytest.raises(ValueError):
            prepare_qat(Sequential(Linear(4, 4), BatchNorm1d(4)))

    def test_output_close_to_float(self):
        qat, x = calibrated_qat()
        model = fused_model()
        model.eval()
        ref = model.forward(x[:100])
        out = qat.forward(x[:100])
        scale = max(np.abs(ref).max(), 1.0)
        assert np.abs(out - ref).max() / scale < 0.05

    def test_qat_trains(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(500, 6))
        y = (x[:, :1] * 2.0) + 1.0
        qat = prepare_qat(fused_model(1))
        trainer = Trainer(
            qat, MSELoss(), SGD(qat.parameters(), lr=0.01, momentum=0.9),
            batch_size=64, max_epochs=20, patience=20,
        )
        hist = trainer.fit(x[:400], y[:400], x[400:], y[400:], rng)
        assert hist.val_loss[-1] < hist.val_loss[0]


class TestConvertToInt8:
    def test_matches_fake_quant_model(self):
        qat, x = calibrated_qat(seed=2)
        engine = convert_to_int8(qat)
        ref = qat.forward(x[:200])[:, 0]
        out = engine.predict_logit(x[:200])
        # Integer path vs fake-quant float path agree to ~quant noise.
        denom = max(np.abs(ref).max(), 1.0)
        assert np.abs(out - ref).max() / denom < 0.06

    def test_integer_dtypes(self):
        qat, _ = calibrated_qat(seed=3)
        engine = convert_to_int8(qat)
        for layer in engine.layers:
            assert layer.weight_q.dtype == np.int8
            # Bias is held at the accumulator's width: int32, the
            # FPGA's fixed-width adder (saturating on overflow).
            assert layer.bias_q.dtype == np.int32

    def test_weight_bytes(self):
        qat, _ = calibrated_qat(seed=4)
        engine = convert_to_int8(qat)
        assert engine.weight_bytes == 6 * 12 + 12 * 1

    def test_requires_prepared_model(self):
        with pytest.raises(ValueError):
            convert_to_int8(fused_model())

    def test_relu_fused_into_layer(self):
        qat, _ = calibrated_qat(seed=5)
        engine = convert_to_int8(qat)
        assert engine.layers[0].relu is True
        assert engine.layers[1].relu is False

    def test_relu_clamps_at_zero_point(self):
        """Quantized ReLU output never dips below the zero point."""
        qat, x = calibrated_qat(seed=6)
        engine = convert_to_int8(qat)
        from repro.quantization.fake_quant import UINT8_MAX, UINT8_MIN, quantize

        x_q = quantize(
            x[:100], engine.input_scale, engine.input_zero_point,
            UINT8_MIN, UINT8_MAX,
        )
        y_q = engine.layers[0].forward_int(x_q)
        assert np.all(y_q >= engine.layers[0].out_zero_point)
