"""Tests for Linear+BatchNorm fusion."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm1d, Linear, ReLU, Sequential
from repro.quantization.fuse import fuse_linear_bn_relu


def trained_swapped_model(seed=0):
    rng = np.random.default_rng(seed)
    model = Sequential(
        Linear(4, 8, rng), BatchNorm1d(8), ReLU(), Linear(8, 1, rng)
    )
    model.train()
    for _ in range(10):
        model.forward(rng.normal(2.0, 1.5, size=(64, 4)))
    model.eval()
    return model


class TestFusion:
    def test_output_identical(self):
        model = trained_swapped_model()
        fused = fuse_linear_bn_relu(model)
        x = np.random.default_rng(1).normal(size=(32, 4))
        assert np.allclose(model.forward(x), fused.forward(x), atol=1e-10)

    def test_bn_layers_removed(self):
        fused = fuse_linear_bn_relu(trained_swapped_model())
        assert not any(isinstance(m, BatchNorm1d) for m in fused)

    def test_relu_preserved(self):
        fused = fuse_linear_bn_relu(trained_swapped_model())
        assert any(isinstance(m, ReLU) for m in fused)

    def test_training_mode_rejected(self):
        model = trained_swapped_model()
        model.train()
        with pytest.raises(ValueError):
            fuse_linear_bn_relu(model)

    def test_orphan_batchnorm_rejected(self):
        model = Sequential(BatchNorm1d(4), Linear(4, 1))
        model.eval()
        with pytest.raises(ValueError):
            fuse_linear_bn_relu(model)

    def test_width_mismatch_rejected(self):
        model = Sequential(Linear(4, 8), BatchNorm1d(4))
        model.eval()
        with pytest.raises(ValueError):
            fuse_linear_bn_relu(model)

    def test_plain_linear_passes_through(self):
        model = Sequential(Linear(4, 2))
        model.eval()
        fused = fuse_linear_bn_relu(model)
        x = np.random.default_rng(2).normal(size=(5, 4))
        assert np.allclose(model.forward(x), fused.forward(x))
