"""Tests for quantization primitives and fake quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization.fake_quant import (
    FakeQuantize,
    INT8_MAX,
    INT8_MIN,
    UINT8_MAX,
    UINT8_MIN,
    dequantize,
    quantize,
    quantize_affine_params,
    quantize_symmetric_params,
)


class TestQuantizeParams:
    def test_symmetric_zero_point_is_zero(self):
        scale, zp = quantize_symmetric_params(-3.0, 5.0)
        assert zp == 0
        assert scale == pytest.approx(5.0 / 128)

    def test_affine_covers_range(self):
        scale, zp = quantize_affine_params(-2.0, 6.0)
        q_lo = quantize(np.array([-2.0]), scale, zp, UINT8_MIN, UINT8_MAX)
        q_hi = quantize(np.array([6.0]), scale, zp, UINT8_MIN, UINT8_MAX)
        assert q_lo[0] >= UINT8_MIN and q_hi[0] <= UINT8_MAX
        assert abs(dequantize(q_lo, scale, zp)[0] - (-2.0)) < scale
        assert abs(dequantize(q_hi, scale, zp)[0] - 6.0) < scale

    def test_affine_zero_exactly_representable(self):
        scale, zp = quantize_affine_params(0.5, 6.0)  # range widened to 0
        q = quantize(np.array([0.0]), scale, zp, UINT8_MIN, UINT8_MAX)
        assert dequantize(q, scale, zp)[0] == pytest.approx(0.0, abs=1e-12)

    @given(
        st.floats(min_value=-100, max_value=0),
        st.floats(min_value=0.1, max_value=100),
    )
    @settings(max_examples=50)
    def test_round_trip_error_bounded(self, lo, hi):
        scale, zp = quantize_affine_params(lo, hi)
        rng = np.random.default_rng(0)
        x = rng.uniform(lo, hi, 100)
        q = quantize(x, scale, zp, UINT8_MIN, UINT8_MAX)
        back = dequantize(q, scale, zp)
        assert np.all(np.abs(back - x) <= scale / 2 + 1e-9)


class TestFakeQuantize:
    def test_training_observes_and_rounds(self):
        fq = FakeQuantize()
        fq.train()
        x = np.linspace(-1, 1, 101)[None, :]
        out = fq.forward(x)
        # Rounded to the grid: at most scale/2 away.
        assert np.all(np.abs(out - x) <= fq.scale / 2 + 1e-9)

    def test_eval_uses_frozen_params(self):
        fq = FakeQuantize()
        fq.train()
        fq.forward(np.array([[-1.0, 1.0]]))
        scale = fq.scale
        fq.eval()
        fq.forward(np.array([[-100.0, 100.0]]))
        assert fq.scale == scale

    def test_straight_through_gradient(self):
        fq = FakeQuantize()
        fq.train()
        fq.forward(np.array([[-1.0, 0.0, 1.0]]))
        fq.eval()
        # Out-of-range values get zero gradient.
        fq.forward(np.array([[-100.0, 0.0, 100.0]]))
        g = fq.backward(np.ones((1, 3)))
        assert g[0, 0] == 0.0 and g[0, 2] == 0.0
        assert g[0, 1] == 1.0

    def test_symmetric_mode(self):
        fq = FakeQuantize(symmetric=True)
        fq.train()
        fq.forward(np.array([[-2.0, 2.0]]))
        assert fq.zero_point == 0
        assert fq.qrange == (INT8_MIN, INT8_MAX)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            FakeQuantize().backward(np.ones((1, 1)))


class TestObservers:
    def test_minmax_tracks_extremes(self):
        from repro.quantization.observers import MinMaxObserver

        obs = MinMaxObserver()
        obs.observe(np.array([1.0, 5.0]))
        obs.observe(np.array([-3.0, 2.0]))
        assert obs.range() == (-3.0, 5.0)

    def test_minmax_uninitialized_default(self):
        from repro.quantization.observers import MinMaxObserver

        assert MinMaxObserver().range() == (0.0, 1.0)

    def test_moving_average_smooths(self):
        from repro.quantization.observers import MovingAverageObserver

        obs = MovingAverageObserver(momentum=0.5)
        obs.observe(np.array([0.0, 10.0]))
        obs.observe(np.array([0.0, 20.0]))
        assert obs.range()[1] == pytest.approx(15.0)

    def test_moving_average_invalid_momentum(self):
        from repro.quantization.observers import MovingAverageObserver

        with pytest.raises(ValueError):
            MovingAverageObserver(momentum=0.0)

    def test_empty_observation_ignored(self):
        from repro.quantization.observers import MinMaxObserver

        obs = MinMaxObserver()
        obs.observe(np.array([]))
        assert not obs.initialized
