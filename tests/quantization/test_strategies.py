"""Tests for alternative quantization strategies (PTQ, per-channel, INT4)."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.losses import MSELoss
from repro.nn.optim import SGD
from repro.nn.train import Trainer
from repro.quantization.strategies import (
    post_training_quantize,
    weight_storage_bytes,
)


@pytest.fixture(scope="module")
def trained_fused():
    rng = np.random.default_rng(0)
    model = Sequential(Linear(6, 16, rng), ReLU(), Linear(16, 1, rng))
    x = rng.normal(size=(2000, 6))
    y = np.tanh(x[:, :1]) * 2.0
    trainer = Trainer(
        model, MSELoss(), SGD(model.parameters(), lr=0.02, momentum=0.9),
        batch_size=64, max_epochs=25, patience=10,
    )
    trainer.fit(x[:1500], y[:1500], x[1500:1800], y[1500:1800], rng)
    model.eval()
    return model, x


class TestPTQ:
    def test_close_to_float(self, trained_fused):
        model, x = trained_fused
        q = post_training_quantize(model, x[:1500])
        ref = model.forward(x[1800:])[:, 0]
        out = q.predict_logit(x[1800:])
        assert np.corrcoef(ref, out)[0, 1] > 0.99

    def test_per_channel_at_least_as_good_on_weights(self, trained_fused):
        """Per-channel weight error never exceeds per-tensor weight error."""
        model, x = trained_fused
        qt = post_training_quantize(model, x[:1500], per_channel=False)
        qc = post_training_quantize(model, x[:1500], per_channel=True)
        lin = model[0]
        for q in (qt, qc):
            pass
        # Reconstruct the dequantized weights and compare to float.
        def weight_err(engine, layer_idx, float_w):
            layer = engine.layers[layer_idx]
            mult = np.asarray(layer.requant_multiplier)
            # w_deq = w_q * w_scale; w_scale = mult * out_scale / in_scale —
            # easier: infer scale from max ratio.
            w_q = layer.weight_q.astype(np.float64)
            # per-tensor or per-channel scale via least squares per column
            num = (w_q * float_w).sum(axis=0)
            den = np.maximum((w_q * w_q).sum(axis=0), 1e-12)
            scale = num / den
            return np.abs(w_q * scale - float_w).max()

        err_t = weight_err(qt, 0, lin.weight.value)
        err_c = weight_err(qc, 0, lin.weight.value)
        assert err_c <= err_t + 1e-9

    def test_int4_weights_within_range(self, trained_fused):
        model, x = trained_fused
        q = post_training_quantize(model, x[:1500], weight_bits=4)
        for layer in q.model.layers if hasattr(q, "model") else q.layers:
            assert layer.weight_q.min() >= -8
            assert layer.weight_q.max() <= 7

    def test_int4_degrades_gracefully(self, trained_fused):
        model, x = trained_fused
        q8 = post_training_quantize(model, x[:1500], weight_bits=8)
        q4 = post_training_quantize(model, x[:1500], weight_bits=4)
        ref = model.forward(x[1800:])[:, 0]
        err8 = np.abs(q8.predict_logit(x[1800:]) - ref).mean()
        err4 = np.abs(q4.predict_logit(x[1800:]) - ref).mean()
        assert err8 <= err4 + 1e-9
        assert np.corrcoef(ref, q4.predict_logit(x[1800:]))[0, 1] > 0.95

    def test_invalid_bits(self, trained_fused):
        model, x = trained_fused
        with pytest.raises(ValueError):
            post_training_quantize(model, x[:100], weight_bits=1)

    def test_empty_calibration_rejected(self, trained_fused):
        model, _ = trained_fused
        with pytest.raises(ValueError):
            post_training_quantize(model, np.empty((0, 6)))

    def test_unsupported_module_rejected(self):
        from repro.nn.layers import BatchNorm1d

        model = Sequential(Linear(4, 4), BatchNorm1d(4))
        model.eval()
        with pytest.raises(ValueError):
            post_training_quantize(model, np.zeros((10, 4)))

    def test_weight_storage_accounting(self, trained_fused):
        model, x = trained_fused
        q = post_training_quantize(model, x[:100])
        full = weight_storage_bytes(q, 8)
        half = weight_storage_bytes(q, 4)
        assert full == q.weight_bytes
        assert half == full / 2
