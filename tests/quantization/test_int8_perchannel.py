"""Direct math tests of the per-channel integer linear stage."""

import numpy as np
import pytest

from repro.quantization.fake_quant import (
    UINT8_MAX,
    UINT8_MIN,
    quantize,
    quantize_affine_params,
)
from repro.quantization.int8 import QuantizedLinear


def reference_float(x, w, b, relu):
    y = x @ w + b
    return np.maximum(y, 0.0) if relu else y


def build_layer(w, b, in_scale, in_zp, out_scale, out_zp, per_channel, relu,
                bits=8):
    if per_channel:
        qmax = 2 ** (bits - 1) - 1
        w_scale = np.maximum(np.abs(w).max(axis=0), 1e-12) / qmax
    else:
        qmax = 2 ** (bits - 1) - 1
        w_scale = float(np.abs(w).max() / qmax)
    return QuantizedLinear.from_float(
        weight=w,
        bias=b,
        weight_scale=w_scale,
        in_scale=in_scale,
        in_zero_point=in_zp,
        out_scale=out_scale,
        out_zero_point=out_zp,
        relu=relu,
        weight_qmin=-(2 ** (bits - 1)),
        weight_qmax=qmax,
    )


class TestPerChannelLinear:
    @pytest.mark.parametrize("per_channel", [False, True])
    @pytest.mark.parametrize("relu", [False, True])
    def test_matches_float_reference(self, per_channel, relu):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(6, 4))
        # Make channel magnitudes wildly different: per-channel's use case.
        w *= np.array([0.01, 0.1, 1.0, 5.0])
        b = rng.normal(size=4)
        x = rng.normal(size=(200, 6))

        in_scale, in_zp = quantize_affine_params(x.min(), x.max())
        y_ref = reference_float(x, w, b, relu)
        out_scale, out_zp = quantize_affine_params(y_ref.min(), y_ref.max())
        layer = build_layer(
            w, b, in_scale, in_zp, out_scale, out_zp, per_channel, relu
        )
        x_q = quantize(x, in_scale, in_zp, UINT8_MIN, UINT8_MAX)
        y = layer.dequantize_output(layer.forward_int(x_q))
        # Error bounded by a few output quanta.
        assert np.abs(y - y_ref).max() < 6.0 * out_scale

    def test_per_channel_beats_per_tensor_on_skewed_weights(self):
        """With wildly different channel magnitudes, per-channel scales
        reconstruct the stored weights far more faithfully.  (The
        advantage is judged at the weight level: after 8-bit *output*
        quantization both variants share the same activation error
        floor, so the end-to-end comparison lives in
        tests/quantization/test_strategies.py.)"""
        rng = np.random.default_rng(1)
        w = rng.normal(size=(8, 4)) * np.array([1e-3, 1e-2, 1.0, 10.0])
        b = np.zeros(4)
        in_scale, in_zp = quantize_affine_params(-3.0, 3.0)
        out_scale, out_zp = quantize_affine_params(-30.0, 30.0)

        def weight_err(per_channel):
            layer = build_layer(
                w, b, in_scale, in_zp, out_scale, out_zp, per_channel, False
            )
            # Recover each channel's scale from the requant multiplier.
            mult = np.broadcast_to(
                np.asarray(layer.requant_multiplier, dtype=np.float64), (4,)
            )
            w_scale = mult * out_scale / in_scale
            w_deq = layer.weight_q.astype(np.float64) * w_scale[None, :]
            # Relative error on the small channels, where a shared scale
            # quantizes everything to zero.
            return np.abs(w_deq - w)[:, :2].max()

        assert weight_err(True) < weight_err(False)

    def test_per_channel_scale_shape_check(self):
        w = np.zeros((3, 2))
        with pytest.raises(ValueError):
            QuantizedLinear.from_float(
                weight=w,
                bias=np.zeros(2),
                weight_scale=np.array([1.0, 1.0, 1.0]),  # wrong length
                in_scale=1.0,
                in_zero_point=0,
                out_scale=1.0,
                out_zero_point=0,
                relu=False,
            )

    def test_int4_weight_bounds(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(5, 3))
        layer = build_layer(
            w, np.zeros(3), 0.1, 128, 0.1, 128, per_channel=True, relu=False,
            bits=4,
        )
        assert layer.weight_q.min() >= -8
        assert layer.weight_q.max() <= 7


class TestBiasAccumulatorRange:
    def test_bias_stored_as_int32(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(6, 3))
        layer = build_layer(w, rng.normal(size=3), 0.05, 3, 0.1, 0,
                            per_channel=False, relu=False)
        assert layer.bias_q.dtype == np.int32

    def test_overflowing_bias_saturates_with_warning(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(4, 2))
        # Tiny scales push bias/(s_x*s_w) far beyond the int32 range.
        huge_bias = np.array([1e6, -1e6])
        with pytest.warns(RuntimeWarning, match="int32 accumulator range"):
            layer = build_layer(w, huge_bias, 1e-4, 0, 0.1, 0,
                                per_channel=False, relu=False)
        assert layer.bias_q.dtype == np.int32
        assert layer.bias_q[0] == 2 ** 31 - 1
        assert layer.bias_q[1] == -(2 ** 31)

    def test_in_range_bias_unchanged_and_silent(self):
        import warnings as _warnings

        rng = np.random.default_rng(2)
        w = rng.normal(size=(5, 4))
        b = rng.normal(size=4)
        x = rng.normal(size=(64, 5))
        in_scale, in_zp = quantize_affine_params(x.min(), x.max())
        y_ref = reference_float(x, w, b, relu=True)
        out_scale, out_zp = quantize_affine_params(y_ref.min(), y_ref.max())
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            layer = build_layer(w, b, in_scale, in_zp, out_scale, out_zp,
                                per_channel=True, relu=True)
        # The integer path still tracks the float reference.
        x_q = quantize(x, in_scale, in_zp, UINT8_MIN, UINT8_MAX)
        y = layer.dequantize_output(layer.forward_int(x_q))
        assert np.abs(y - y_ref).max() < 6.0 * out_scale
