"""Admission control: shed vs backpressure, stats, lifecycle errors."""

import asyncio

import pytest

from repro.serve.admission import AdmissionController, ServerOverloaded


class TestValidation:
    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="limit"):
            AdmissionController(0)

    def test_release_without_acquire(self):
        ctrl = AdmissionController(1)
        with pytest.raises(RuntimeError, match="release"):
            ctrl.release()


class TestShedPath:
    def test_admits_until_full_then_sheds(self):
        ctrl = AdmissionController(2)
        ctrl.try_acquire()
        ctrl.try_acquire()
        with pytest.raises(ServerOverloaded, match="2/2 in flight"):
            ctrl.try_acquire()
        assert ctrl.stats() == {
            "limit": 2,
            "in_flight": 2,
            "accepted": 2,
            "rejected": 1,
            "peak_in_flight": 2,
        }

    def test_release_reopens_admission(self):
        ctrl = AdmissionController(1)
        ctrl.try_acquire()
        ctrl.release()
        ctrl.try_acquire()  # no raise
        assert ctrl.accepted == 2
        assert ctrl.rejected == 0

    def test_peak_tracks_high_water_mark(self):
        ctrl = AdmissionController(3)
        ctrl.try_acquire()
        ctrl.try_acquire()
        ctrl.release()
        ctrl.try_acquire()
        assert ctrl.peak_in_flight == 2


class TestBackpressurePath:
    def test_acquire_waits_for_capacity(self):
        order = []

        async def scenario():
            ctrl = AdmissionController(1)
            await ctrl.acquire()

            async def waiter():
                order.append("wait-start")
                await ctrl.acquire()
                order.append("admitted")

            task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0)
            assert order == ["wait-start"]  # parked, not admitted
            order.append("releasing")
            ctrl.release()
            await task
            assert ctrl.in_flight == 1

        asyncio.run(scenario())
        assert order == ["wait-start", "releasing", "admitted"]

    def test_waiters_admitted_as_slots_free(self):
        async def scenario():
            ctrl = AdmissionController(2)
            await ctrl.acquire()
            await ctrl.acquire()
            tasks = [
                asyncio.ensure_future(ctrl.acquire()) for _ in range(3)
            ]
            await asyncio.sleep(0)
            assert all(not t.done() for t in tasks)
            for _ in range(3):
                ctrl.release()
                await asyncio.sleep(0)
                await asyncio.sleep(0)
            await asyncio.gather(*tasks)
            assert ctrl.in_flight == 2 + 3 - 3
            assert ctrl.accepted == 5

        asyncio.run(scenario())
