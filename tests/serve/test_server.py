"""End-to-end server behavior: parity, streaming, admission, drain.

The parity tests reuse the ``test_batch`` re-simulation dance: each
event's rng must arrive at localization advanced past the simulation
draws, so references re-simulate from the same seeds before localizing.
"""

import asyncio

import numpy as np
import pytest

import repro.obs as obs
from repro.infer import build_engine, localize_many
from repro.serve import (
    BatchPolicy,
    LocalizationServer,
    ServeConfig,
    ServerClosed,
    ServerOverloaded,
    serve_events,
)

#: A batch policy that never self-triggers during a test: flushes only
#: happen via drain (or an explicit size trigger the test arranges).
PARKED = BatchPolicy(max_requests=10_000, max_rows=10_000_000, deadline_s=60.0)


def _simulated(geometry, response, seed, n):
    """Simulate ``n`` trials' event sets the way the campaign path does."""
    from repro.experiments.trials import TrialConfig, _simulate_trial

    config = TrialConfig(condition="ml")
    seeds = np.random.SeedSequence(seed).spawn(n)
    event_sets = []
    for s in seeds:
        events, _ = _simulate_trial(
            geometry, response, np.random.default_rng(s), config
        )
        event_sets.append(events)
    return seeds, event_sets


def _replayed_rngs(geometry, response, seeds):
    """Fresh rngs advanced past the simulation draws, one per seed."""
    from repro.experiments.trials import TrialConfig, _simulate_trial

    rngs = []
    for s in seeds:
        rng = np.random.default_rng(s)
        _simulate_trial(geometry, response, rng, TrialConfig(condition="ml"))
        rngs.append(rng)
    return rngs


@pytest.fixture(scope="module")
def engine(tiny_models):
    return build_engine(tiny_models, "planned", dtype="float64")


@pytest.fixture(scope="module")
def served_inputs(geometry, response):
    return _simulated(geometry, response, 41, 3)


class TestParity:
    def test_serve_events_matches_localize_many_bitwise(
        self, geometry, response, tiny_models, engine, served_inputs
    ):
        seeds, event_sets = served_inputs
        ref = localize_many(
            tiny_models,
            event_sets,
            _replayed_rngs(geometry, response, seeds),
            engine=engine,
        )
        served = serve_events(
            tiny_models,
            event_sets,
            _replayed_rngs(geometry, response, seeds),
            engine=engine,
        )
        assert len(served) == len(ref)
        for s, r in zip(served, ref):
            np.testing.assert_array_equal(s.direction, r.direction)
            assert s.iterations == r.iterations
            assert s.rings_kept == r.rings_kept

    def test_single_client_passthrough_matches_per_event_bitwise(
        self, geometry, response, tiny_models, engine, served_inputs
    ):
        seeds, event_sets = served_inputs
        (rng_ref,) = _replayed_rngs(geometry, response, seeds[:1])
        ref = tiny_models.localize(event_sets[0], rng_ref, engine=engine)

        (rng_served,) = _replayed_rngs(geometry, response, seeds[:1])
        config = ServeConfig(
            queue_limit=1, policy=BatchPolicy(max_requests=1)
        )
        (served,) = serve_events(
            tiny_models,
            event_sets[:1],
            [rng_served],
            engine=engine,
            config=config,
        )
        # Batches of one gather no foreign rows, so the served result is
        # bit-identical to the direct per-event path.
        np.testing.assert_array_equal(served.direction, ref.direction)
        assert served.iterations == ref.iterations


class TestStreaming:
    def test_localize_stream_yields_per_chunk_in_order(
        self, tiny_models, engine, served_inputs
    ):
        _, event_sets = served_inputs
        chunks = [
            [(event_sets[0], np.random.default_rng(0)),
             (event_sets[1], np.random.default_rng(1))],
            [(event_sets[2], np.random.default_rng(2))],
        ]

        async def scenario():
            server = LocalizationServer(tiny_models, engine=engine)
            out = []
            async with server:
                async for results in server.localize_stream(
                    chunks, halt_after=1
                ):
                    out.append(results)
            return out, server.stats()

        out, stats = asyncio.run(scenario())
        assert [len(results) for results in out] == [2, 1]
        for results in out:
            for outcome in results:
                assert outcome.direction.shape == (3,)
        assert stats["admission"]["accepted"] == 3
        assert stats["admission"]["rejected"] == 0

    def test_deadline_trigger_drives_completion(
        self, tiny_models, engine, served_inputs
    ):
        _, event_sets = served_inputs
        config = ServeConfig(
            queue_limit=4,
            policy=BatchPolicy(max_requests=10_000, deadline_s=0.001),
        )

        async def scenario():
            server = LocalizationServer(
                tiny_models, engine=engine, config=config
            )
            async with server:
                outcome = await server.submit(
                    event_sets[0], np.random.default_rng(7), halt_after=1,
                    wait=True,
                )
            return outcome, server.stats()

        outcome, stats = asyncio.run(scenario())
        assert outcome.direction.shape == (3,)
        assert stats["flush_reasons"].get("deadline", 0) >= 1
        assert stats["flush_reasons"].get("size", 0) == 0


class TestAdmission:
    def test_full_queue_sheds_with_server_overloaded(
        self, tiny_models, engine, served_inputs
    ):
        _, event_sets = served_inputs
        config = ServeConfig(queue_limit=2, policy=PARKED)

        async def scenario():
            server = LocalizationServer(
                tiny_models, engine=engine, config=config
            )
            async with server:
                stuck = [
                    asyncio.ensure_future(
                        server.submit(
                            event_sets[i], np.random.default_rng(i),
                            halt_after=1, wait=True,
                        )
                    )
                    for i in range(2)
                ]
                for _ in range(4):
                    await asyncio.sleep(0)
                with pytest.raises(ServerOverloaded):
                    await server.submit(
                        event_sets[2], np.random.default_rng(2), halt_after=1
                    )
                # Draining completes the admitted jobs (drain flushes) —
                # without it they would wait out the parked deadline.
                await server.drain()
                results = await asyncio.gather(*stuck)
            return results, server.stats()

        results, stats = asyncio.run(scenario())
        assert len(results) == 2
        assert stats["admission"]["rejected"] == 1
        assert stats["flush_reasons"].get("drain", 0) >= 1

    def test_unstarted_server_rejects_submissions(self, tiny_models, engine):
        server = LocalizationServer(tiny_models, engine=engine)

        async def scenario():
            with pytest.raises(RuntimeError, match="not started"):
                await server.submit(None, np.random.default_rng(0))

        asyncio.run(scenario())


class TestDrain:
    def test_drain_completes_in_flight_fifo_then_refuses(
        self, tiny_models, engine, served_inputs
    ):
        _, event_sets = served_inputs
        config = ServeConfig(queue_limit=8, policy=PARKED)
        completion_order = []

        async def client(server, i):
            outcome = await server.submit(
                event_sets[i], np.random.default_rng(i), halt_after=1,
                wait=True,
            )
            completion_order.append(i)
            return outcome

        async def scenario():
            server = LocalizationServer(
                tiny_models, engine=engine, config=config
            )
            await server.start()
            tasks = [
                asyncio.ensure_future(client(server, i)) for i in range(3)
            ]
            for _ in range(4):
                await asyncio.sleep(0)
            assert server.scheduler.live == 3
            await server.drain()
            assert server.scheduler.live == 0
            with pytest.raises(ServerClosed):
                await server.submit(
                    event_sets[0], np.random.default_rng(0), halt_after=1
                )
            results = await asyncio.gather(*tasks)
            await server.close()
            return results, server.stats()

        results, stats = asyncio.run(scenario())
        assert all(r.direction.shape == (3,) for r in results)
        # Jobs submitted together complete in submission (FIFO) order.
        assert completion_order == [0, 1, 2]
        assert stats["flush_reasons"].get("drain", 0) >= 1

    def test_close_is_idempotent_under_context_manager(
        self, tiny_models, engine
    ):
        async def scenario():
            server = LocalizationServer(tiny_models, engine=engine)
            async with server:
                pass
            assert not server.running

        asyncio.run(scenario())


class TestObservability:
    def test_request_latency_lands_in_serve_histogram(
        self, tiny_models, engine, served_inputs
    ):
        _, event_sets = served_inputs
        obs.enable()
        try:
            serve_events(
                tiny_models,
                event_sets,
                [np.random.default_rng(i) for i in range(3)],
                engine=engine,
                halt_after=1,
            )
            snap = obs.metrics.REGISTRY.dump()
        finally:
            obs.disable()
        hist = snap["histograms"]["serve.request_ms"]
        assert hist["count"] == 3
        assert snap["counters"]["serve.rounds"] >= 1
        assert snap["counters"]["serve.accepted"] == 3


class TestServeEventsValidation:
    def test_rng_count_mismatch_rejected(self, tiny_models, engine):
        with pytest.raises(ValueError, match="one rng per"):
            serve_events(tiny_models, [], [np.random.default_rng(0)],
                         engine=engine)

    def test_empty_input_returns_empty(self, tiny_models, engine):
        assert serve_events(tiny_models, [], [], engine=engine) == []


class TestSkymapField:
    def test_served_outcome_carries_skymap(
        self, geometry, response, tiny_models, served_inputs
    ):
        from dataclasses import replace

        from repro.localization.hierarchy import SkymapConfig
        from repro.pipeline.ml_pipeline import MLPipeline

        pipeline = MLPipeline(
            background_net=tiny_models.background_net,
            deta_net=tiny_models.deta_net,
            config=replace(
                tiny_models.config, skymap=SkymapConfig(resolution_deg=1.0)
            ),
        )
        seeds, event_sets = served_inputs
        rngs = _replayed_rngs(geometry, response, seeds[:1])
        (outcome,) = serve_events(pipeline, event_sets[:1], rngs)
        assert outcome.sky is not None
        assert outcome.sky.probability.sum() == pytest.approx(1.0)
        assert outcome.sky.credible_region_area_deg2(0.9) > 0.0
