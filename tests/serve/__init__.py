"""Tests for the streaming localization service (``repro.serve``)."""
