"""Micro-batch scheduler semantics: triggers, FIFO order, lock-step rounds.

These tests drive :class:`MicroBatchScheduler` synchronously with a fake
clock, a fake engine, and hand-written request generators, so flush
semantics are pinned without any asyncio or trained models involved.
"""

import numpy as np
import pytest

from repro.infer.engine import InferRequest
from repro.serve.scheduler import BatchPolicy, MicroBatchScheduler, ServeJob


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class EchoEngine:
    """Engine double: answers row ``x`` with ``x + tag`` per kind."""

    def background_proba(self, features):
        return features[:, 0] + 1000.0

    def deta(self, features):
        return features[:, 0] + 2000.0


def request_gen(job_tag, n_rounds, received, kind="background"):
    """A generator filing ``n_rounds`` single-row requests, tagged by job.

    Every answer payload is appended to ``received`` as
    ``(job_tag, round, payload_row)``; the generator returns the string
    ``done-<tag>`` as its outcome.
    """
    for r in range(n_rounds):
        features = np.array([[job_tag * 10.0 + r]])
        payload = yield InferRequest(kind, features)
        received.append((job_tag, r, float(payload[0])))
    return f"done-{job_tag}"


def make_scheduler(clock=None, **policy_kwargs):
    policy = BatchPolicy(**policy_kwargs) if policy_kwargs else BatchPolicy()
    return MicroBatchScheduler(
        EchoEngine(), policy, clock=clock or FakeClock()
    )


def add_job(sched, job_id, gen):
    job = ServeJob(job_id, gen, sched._clock())
    completed = sched.add(job)
    return job, completed


class TestPolicy:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="max_rows"):
            BatchPolicy(max_rows=0)
        with pytest.raises(ValueError, match="max_requests"):
            BatchPolicy(max_requests=0)
        with pytest.raises(ValueError, match="deadline_s"):
            BatchPolicy(deadline_s=-0.1)


class TestTriggers:
    def test_idle_scheduler_is_never_due(self):
        sched = make_scheduler()
        assert sched.due() is None
        assert sched.next_deadline() is None

    def test_size_trigger_on_request_count(self):
        received = []
        sched = make_scheduler(max_requests=2, deadline_s=60.0)
        add_job(sched, 0, request_gen(0, 1, received))
        assert sched.due() is None  # one pending, deadline far away
        add_job(sched, 1, request_gen(1, 1, received))
        assert sched.due() == "size"

    def test_size_trigger_on_row_count(self):
        sched = make_scheduler(max_rows=3, max_requests=100, deadline_s=60.0)

        def wide_gen(rows):
            yield InferRequest("background", np.zeros((rows, 1)))
            return "done"

        add_job(sched, 0, wide_gen(2))
        assert sched.due() is None
        add_job(sched, 1, wide_gen(2))
        assert sched.pending_rows() == 4
        assert sched.due() == "size"

    def test_deadline_trigger_fires_after_oldest_request_ages(self):
        clock = FakeClock()
        received = []
        sched = make_scheduler(clock, max_requests=100, deadline_s=0.5)
        add_job(sched, 0, request_gen(0, 1, received))
        assert sched.due() is None
        assert sched.next_deadline() == pytest.approx(0.5)
        clock.advance(0.3)
        assert sched.due() is None
        clock.advance(0.25)
        assert sched.due() == "deadline"

    def test_deadline_anchored_to_oldest_pending(self):
        clock = FakeClock()
        received = []
        sched = make_scheduler(clock, max_requests=100, deadline_s=0.5)
        add_job(sched, 0, request_gen(0, 1, received))
        clock.advance(0.4)
        add_job(sched, 1, request_gen(1, 1, received))
        # The newer request does not push the deadline out.
        assert sched.next_deadline() == pytest.approx(0.5)
        clock.advance(0.15)
        assert sched.due() == "deadline"

    def test_zero_deadline_is_always_due(self):
        received = []
        sched = make_scheduler(deadline_s=0.0)
        add_job(sched, 0, request_gen(0, 1, received))
        assert sched.due() == "deadline"


class TestFlush:
    def test_single_round_scatters_rows_to_owners(self):
        received = []
        sched = make_scheduler()
        jobs = [
            add_job(sched, i, request_gen(i, 1, received))[0]
            for i in range(3)
        ]
        completed = sched.flush("size")
        assert [j.job_id for j in completed] == [0, 1, 2]
        assert all(j.done for j in jobs)
        assert [j.outcome for j in jobs] == ["done-0", "done-1", "done-2"]
        # Row i*10 came back as i*10 + 1000: each job got its own slice.
        assert received == [(0, 0, 1000.0), (1, 0, 1010.0), (2, 0, 1020.0)]
        assert sched.live == 0
        assert sched.rounds == 1
        assert sched.rows_flushed == 3
        assert sched.flush_reasons == {"size": 1}

    def test_mixed_kinds_processed_in_fixed_order(self):
        received = []
        sched = make_scheduler()
        add_job(sched, 0, request_gen(0, 1, received, kind="deta"))
        add_job(sched, 1, request_gen(1, 1, received, kind="background"))
        sched.flush()
        # Background (job 1) is evaluated before deta (job 0), matching
        # localize_many's fixed kind order; both scatter correctly.
        assert received == [(1, 0, 1010.0), (0, 0, 2000.0)]

    def test_multi_round_jobs_refile_into_next_flush(self):
        received = []
        sched = make_scheduler()
        job, _ = add_job(sched, 0, request_gen(0, 3, received))
        for expected_pending in (1, 1, 1):
            assert sched.pending_requests == expected_pending
            sched.flush()
        assert job.done and job.outcome == "done-0"
        assert job.rounds == 3
        assert sched.rounds == 3

    def test_fifo_fairness_across_unbalanced_clients(self):
        # Job 1 subscribes later but needs fewer rounds; completion order
        # within a round is still ascending job id, and no job is starved.
        received = []
        sched = make_scheduler()
        long_job, _ = add_job(sched, 0, request_gen(0, 3, received))
        short_job, _ = add_job(sched, 1, request_gen(1, 1, received))
        first = sched.flush()
        assert [j.job_id for j in first] == [1]
        assert short_job.done
        sched.flush()
        third = sched.flush()
        assert [j.job_id for j in third] == [0]
        assert long_job.done

    def test_completion_without_engine_need(self):
        def instant():
            return "immediate"
            yield  # pragma: no cover

        sched = make_scheduler()
        job = ServeJob(0, instant(), 0.0)
        completed = sched.add(job)
        assert completed == [job]
        assert job.outcome == "immediate"
        assert sched.live == 0

    def test_generator_error_lands_on_job_not_batch(self):
        received = []

        def broken():
            yield InferRequest("background", np.array([[5.0]]))
            raise RuntimeError("boom")

        sched = make_scheduler()
        bad, _ = add_job(sched, 0, broken())
        good, _ = add_job(sched, 1, request_gen(1, 1, received))
        completed = sched.flush()
        assert {j.job_id for j in completed} == {0, 1}
        assert isinstance(bad.error, RuntimeError)
        assert good.outcome == "done-1"
        assert sched.live == 0

    def test_unknown_request_kind_fails_fast(self):
        def weird():
            yield InferRequest("mystery", np.array([[1.0]]))
            return "unreachable"

        sched = make_scheduler()
        job, _ = add_job(sched, 0, weird())
        (completed,) = sched.flush()
        assert completed is job
        assert isinstance(job.error, ValueError)
        assert "unknown request kind" in str(job.error)
        assert sched.live == 0
