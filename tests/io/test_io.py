"""Tests for persistence round trips."""

import numpy as np
import pytest

from repro.io.datasets import (
    load_pipeline,
    load_training_data,
    save_pipeline,
    save_training_data,
)


class TestTrainingDataIO:
    def test_round_trip(self, training_data, tmp_path):
        path = tmp_path / "data.npz"
        save_training_data(training_data, path)
        loaded = load_training_data(path)
        assert np.array_equal(loaded.features, training_data.features)
        assert np.array_equal(loaded.labels, training_data.labels)
        assert np.array_equal(
            loaded.true_eta_errors, training_data.true_eta_errors
        )
        assert np.array_equal(loaded.polar_true, training_data.polar_true)
        assert np.array_equal(loaded.prop_deta, training_data.prop_deta)


class TestPipelineIO:
    def test_round_trip(self, tiny_models, rings, events, tmp_path):
        path = tmp_path / "pipeline.pkl"
        save_pipeline(tiny_models, path)
        loaded = load_pipeline(path)
        from repro.models.features import extract_features

        feats = extract_features(rings, events, polar_guess_deg=20.0)
        assert np.allclose(
            loaded.background_net.predict_proba(feats),
            tiny_models.background_net.predict_proba(feats),
        )
        assert np.allclose(
            loaded.deta_net.predict_deta(feats),
            tiny_models.deta_net.predict_deta(feats),
        )

    def test_wrong_type_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        with open(path, "wb") as f:
            pickle.dump({"not": "a pipeline"}, f)
        with pytest.raises(TypeError):
            load_pipeline(path)
