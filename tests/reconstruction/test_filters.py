"""Tests for reconstruction quality filters."""

import numpy as np
import pytest

from repro.reconstruction.filters import FilterConfig, quality_filter
from repro.reconstruction.rings import build_rings
from tests.reconstruction.test_ordering import kinematic_two_hit, make_event_set


def _ring_and_events(**kw):
    positions, energies = kinematic_two_hit(**kw)
    ev = make_event_set([2], positions, energies, [0, 1])
    return build_rings(ev), ev


class TestQualityFilter:
    def test_good_ring_passes(self):
        rings, ev = _ring_and_events()
        assert quality_filter(rings, ev)[0]

    def test_eta_margin(self):
        rings, ev = _ring_and_events(cos_t=0.995)
        cfg = FilterConfig(eta_margin=0.02)
        assert not quality_filter(rings, ev, cfg)[0]

    def test_lever_arm_gate(self):
        positions, energies = kinematic_two_hit()
        positions[1] = [0.5, 0.0, -0.5]  # 0.5 cm apart -> fails 3 cm gate
        ev = make_event_set([2], positions, energies, [0, 1])
        rings = build_rings(ev)
        if rings.num_rings:  # may be dropped as degenerate upstream
            assert not quality_filter(rings, ev)[0]

    def test_energy_gate(self):
        rings, ev = _ring_and_events(e0=0.12)
        cfg = FilterConfig(min_total_energy_mev=0.5)
        assert not quality_filter(rings, ev, cfg)[0]

    def test_deta_gate(self):
        rings, ev = _ring_and_events()
        wide = rings.with_deta(np.full(rings.num_rings, 10.0))
        assert not quality_filter(wide, ev)[0]

    def test_ordering_score_gate_passes_two_hit(self):
        """2-hit rings (NaN score) always pass the score gate."""
        rings, ev = _ring_and_events()
        cfg = FilterConfig(max_ordering_score=0.0)
        assert quality_filter(rings, ev, cfg)[0]

    def test_filters_reduce_population(self, events):
        rings = build_rings(events)
        mask = quality_filter(rings, events)
        assert 0 < mask.sum() < rings.num_rings

    def test_mask_shape(self, events):
        rings = build_rings(events)
        mask = quality_filter(rings, events)
        assert mask.shape == (rings.num_rings,)
        assert mask.dtype == bool
