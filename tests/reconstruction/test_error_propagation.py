"""Tests for the propagation-of-error d eta estimate."""

import numpy as np
import pytest

from repro.constants import ELECTRON_MASS_MEV
from repro.reconstruction.error_propagation import DETA_FLOOR, propagate_deta


def _call(
    etot=1.0,
    e1=0.3,
    sigma_tot_sq=None,
    sigma_first=0.02,
    eta=0.5,
    dist=10.0,
    sigma_pos=0.1,
):
    if sigma_tot_sq is None:
        sigma_tot_sq = sigma_first**2 + 0.02**2
    axis = np.array([[0.0, 0.0, 1.0]])
    p1 = np.array([[0.0, 0.0, 0.0]])
    p2 = np.array([[0.0, 0.0, -dist]])
    return propagate_deta(
        total_energy=np.array([etot]),
        first_energy=np.array([e1]),
        sigma_total_sq=np.array([sigma_tot_sq]),
        sigma_first=np.array([sigma_first]),
        axis=axis,
        eta=np.array([eta]),
        pos_first=p1,
        pos_second=p2,
        sigma_pos_first=np.full((1, 3), sigma_pos),
        sigma_pos_second=np.full((1, 3), sigma_pos),
    )[0]


class TestPropagateDeta:
    def test_floor_applied(self):
        tiny = _call(sigma_first=1e-9, sigma_tot_sq=1e-18, sigma_pos=1e-9)
        assert tiny == DETA_FLOOR

    def test_monotonic_in_energy_sigma(self):
        a = _call(sigma_first=0.01, sigma_tot_sq=0.01**2 + 0.01**2)
        b = _call(sigma_first=0.05, sigma_tot_sq=0.05**2 + 0.01**2)
        assert b > a

    def test_monotonic_in_position_sigma(self):
        a = _call(sigma_pos=0.05)
        b = _call(sigma_pos=0.5)
        assert b > a

    def test_no_spatial_term_at_forward_scatter(self):
        """sin(theta) = 0 at eta = +-1: position errors contribute nothing."""
        with_spatial = _call(eta=0.5, sigma_pos=1.0)
        without = _call(eta=1.0, sigma_pos=1.0)
        energy_only = _call(eta=1.0, sigma_pos=0.0)
        assert without == pytest.approx(energy_only, rel=1e-9)
        assert with_spatial > without

    def test_longer_lever_arm_shrinks_spatial_term(self):
        short = _call(dist=3.0, sigma_pos=0.5)
        long = _call(dist=30.0, sigma_pos=0.5)
        assert long < short

    def test_energy_term_analytic(self):
        """Compare against a finite-difference propagation of eta."""
        etot, e1 = 1.0, 0.3
        s1, s_other = 0.02, 0.03
        me = ELECTRON_MASS_MEV

        def eta_of(d1, dother):
            total = (e1 + d1) + (etot - e1 + dother)
            scattered = etot - e1 + dother
            return 1.0 - me * (1.0 / scattered - 1.0 / total)

        h = 1e-7
        g1 = (eta_of(h, 0) - eta_of(-h, 0)) / (2 * h)
        g2 = (eta_of(0, h) - eta_of(0, -h)) / (2 * h)
        expected = np.sqrt((g1 * s1) ** 2 + (g2 * s_other) ** 2)
        got = _call(
            etot=etot,
            e1=e1,
            sigma_first=s1,
            sigma_tot_sq=s1**2 + s_other**2,
            eta=1.0,  # kill the spatial term
            sigma_pos=0.0,
        )
        assert got == pytest.approx(expected, rel=1e-6)

    def test_nonfinite_inputs_handled(self):
        """E' = 0 (all energy in the first hit) must not produce NaN."""
        out = _call(etot=1.0, e1=1.0)
        assert np.isfinite(out)
