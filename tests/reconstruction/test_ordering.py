"""Tests for Compton hit ordering."""

import numpy as np
import pytest

from repro.detector.response import EventSet
from repro.physics.compton import scattered_energy
from repro.reconstruction.ordering import order_hits


def make_event_set(hits_per_event, positions, energies, true_order, labels=None):
    """Assemble a minimal EventSet from per-hit arrays."""
    n_events = len(hits_per_event)
    offsets = np.concatenate([[0], np.cumsum(hits_per_event)]).astype(np.int64)
    k = offsets[-1]
    positions = np.asarray(positions, dtype=np.float64)
    energies = np.asarray(energies, dtype=np.float64)
    return EventSet(
        event_offsets=offsets,
        positions=positions,
        energies=energies,
        sigma_energy=np.full(k, 0.01),
        sigma_position=np.full((k, 3), 0.1),
        true_positions=positions.copy(),
        true_energies=energies.copy(),
        true_order=np.asarray(true_order, dtype=np.int64),
        photon_index=np.arange(n_events),
        labels=np.zeros(n_events, dtype=np.int64)
        if labels is None
        else np.asarray(labels),
        photon_energy=np.array(
            [energies[offsets[i] : offsets[i + 1]].sum() for i in range(n_events)]
        ),
        source_direction=np.array([0.0, 0.0, 1.0]),
    )


def kinematic_two_hit(e0=1.0, cos_t=0.5):
    """A physically consistent 2-hit event: Compton scatter then absorb."""
    e_sc = scattered_energy(e0, cos_t)
    first_deposit = e0 - e_sc
    # Positions: first hit at top layer, second below.
    positions = [[0.0, 0.0, -0.5], [2.0, 0.0, -12.0]]
    energies = [first_deposit, e_sc]
    return positions, energies


class TestTwoHitOrdering:
    def test_correct_order_chosen(self):
        positions, energies = kinematic_two_hit()
        ev = make_event_set([2], positions, energies, [0, 1])
        res = order_hits(ev)
        assert res.valid[0]
        assert res.first[0] == 0
        assert res.second[0] == 1
        assert res.correct[0]

    def test_swapped_input_still_finds_first(self):
        positions, energies = kinematic_two_hit()
        ev = make_event_set(
            [2], positions[::-1], energies[::-1], [1, 0]
        )
        res = order_hits(ev)
        assert res.valid[0]
        # Flat index 1 now holds the true first hit.
        assert res.first[0] == 1
        assert res.correct[0]

    def test_invalid_kinematics_flagged(self):
        # Symmetric 0.1+0.1 MeV deposits: eta = 1 - m_e/E_tot*... = -1.55
        # for either ordering, outside [-1, 1] -> no valid order exists.
        ev = make_event_set(
            [2],
            [[0.0, 0.0, -0.5], [0.0, 0.0, -12.0]],
            [0.1, 0.1],
            [0, 1],
        )
        res = order_hits(ev)
        assert not res.valid[0]

    def test_single_hit_invalid(self):
        ev = make_event_set([1], [[0.0, 0.0, -0.5]], [0.3], [0])
        res = order_hits(ev)
        assert not res.valid[0]

    def test_two_hit_score_is_nan(self):
        positions, energies = kinematic_two_hit()
        ev = make_event_set([2], positions, energies, [0, 1])
        res = order_hits(ev)
        assert np.isnan(res.score[0])


class TestMultiHitOrdering:
    def _three_hit_event(self):
        """Geometrically and kinematically consistent 3-hit chain."""
        e0 = 1.5
        # First scatter: cos 0.6 -> deposits d1.
        e1 = scattered_energy(e0, 0.6)
        d1 = e0 - e1
        # Second scatter: cos 0.3 of remaining photon.
        e2 = scattered_energy(e1, 0.3)
        d2 = e1 - e2
        # Third: absorb e2.
        r0 = np.array([0.0, 0.0, -0.5])
        # Direction after first scatter: choose any unit vector v1 with the
        # geometry matching cos of scatter at hit 2 equal to 0.3.
        v1 = np.array([np.sqrt(1 - 0.6**2), 0.0, -0.6])
        v1 /= np.linalg.norm(v1)
        r1 = r0 + 11.5 * v1
        # Build v2 at angle acos(0.3) from v1.
        perp = np.cross(v1, [0.0, 0.0, 1.0])
        perp /= np.linalg.norm(perp)
        v2 = 0.3 * v1 + np.sqrt(1 - 0.3**2) * perp
        r2 = r1 + 8.0 * v2
        positions = [r0, r1, r2]
        energies = [d1, d2, e2]
        return positions, energies

    def test_recovers_order(self):
        positions, energies = self._three_hit_event()
        ev = make_event_set([3], positions, energies, [0, 1, 2])
        res = order_hits(ev)
        assert res.valid[0]
        assert res.first[0] == 0
        assert res.second[0] == 1
        assert res.correct[0]
        assert res.score[0] < 1e-3

    def test_recovers_order_from_shuffled_hits(self):
        positions, energies = self._three_hit_event()
        perm = [2, 0, 1]
        ev = make_event_set(
            [3],
            [positions[i] for i in perm],
            [energies[i] for i in perm],
            [ [0,1,2][i] for i in perm],
        )
        res = order_hits(ev)
        assert res.valid[0]
        assert ev.true_order[res.first[0]] == 0
        assert ev.true_order[res.second[0]] == 1
        assert res.correct[0]

    def test_mixed_multiplicities(self):
        p2, e2 = kinematic_two_hit()
        p3, e3 = self._three_hit_event()
        ev = make_event_set(
            [2, 3],
            list(p2) + list(p3),
            list(e2) + list(e3),
            [0, 1, 0, 1, 2],
        )
        res = order_hits(ev)
        assert res.valid.all()
        assert res.correct.all()


class TestOrderingOnSimulation:
    def test_majority_correct_on_real_events(self, events):
        """On simulated data, ordering beats coin flipping comfortably."""
        res = order_hits(events)
        valid = res.valid
        assert valid.mean() > 0.5
        assert res.correct[valid].mean() > 0.55
