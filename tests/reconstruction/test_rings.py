"""Tests for Compton-ring construction."""

import numpy as np
import pytest

from repro.physics.compton import cos_theta_from_energies
from repro.reconstruction.rings import build_rings
from tests.reconstruction.test_ordering import kinematic_two_hit, make_event_set


class TestBuildRings:
    def test_axis_unit_norm(self, rings):
        assert np.allclose(np.linalg.norm(rings.axis, axis=1), 1.0)

    def test_axis_points_from_second_to_first(self):
        positions, energies = kinematic_two_hit()
        ev = make_event_set([2], positions, energies, [0, 1])
        rings = build_rings(ev)
        expected = np.asarray(positions[0]) - np.asarray(positions[1])
        expected /= np.linalg.norm(expected)
        assert np.allclose(rings.axis[0], expected)

    def test_eta_matches_compton_formula(self):
        positions, energies = kinematic_two_hit(e0=1.0, cos_t=0.5)
        ev = make_event_set([2], positions, energies, [0, 1])
        rings = build_rings(ev)
        expected = cos_theta_from_energies(
            np.array([sum(energies)]), np.array([energies[0]])
        )[0]
        assert rings.eta[0] == pytest.approx(expected)
        assert rings.eta[0] == pytest.approx(0.5, abs=1e-9)

    def test_deta_positive(self, rings):
        assert np.all(rings.deta > 0)

    def test_event_index_valid(self, rings, events):
        assert np.all(rings.event_index >= 0)
        assert np.all(rings.event_index < events.num_events)

    def test_labels_match_events(self, rings, events):
        assert np.array_equal(rings.labels, events.labels[rings.event_index])

    def test_empty_event_set(self, geometry, response):
        from repro.detector.response import _empty_event_set

        ev = _empty_event_set(None)
        rings = build_rings(ev)
        assert rings.num_rings == 0


class TestRingSetOps:
    def test_select(self, rings):
        mask = rings.labels == 0
        sub = rings.select(mask)
        assert sub.num_rings == int(mask.sum())
        assert np.all(sub.labels == 0)

    def test_with_deta_replaces(self, rings):
        new = np.full(rings.num_rings, 0.123)
        out = rings.with_deta(new)
        assert np.allclose(out.deta, 0.123)
        assert out.eta is rings.eta  # shares unchanged arrays

    def test_with_deta_shape_check(self, rings):
        with pytest.raises(ValueError):
            rings.with_deta(np.ones(rings.num_rings + 1))

    def test_residuals_definition(self, rings):
        s = np.array([0.0, 0.0, 1.0])
        r = rings.residuals(s)
        assert np.allclose(r, rings.axis @ s - rings.eta)

    def test_true_eta_errors_requires_source(self, rings):
        sub = rings.select(np.ones(rings.num_rings, dtype=bool))
        object.__setattr__(sub, "source_direction", None) if False else None
        sub.source_direction = None
        with pytest.raises(ValueError):
            sub.true_eta_errors()

    def test_true_errors_nonnegative(self, rings):
        assert np.all(rings.true_eta_errors() >= 0)

    def test_perfect_ring_zero_error(self):
        """A noiseless kinematic event yields ~zero true eta error."""
        cos_t = 0.5
        e0 = 1.0
        # Build geometry so the axis and the source satisfy c.s = cos_t.
        # Source at zenith; incoming beam -z; scatter direction at angle
        # acos(cos_t) from the beam.
        from repro.physics.compton import scattered_energy

        e_sc = scattered_energy(e0, cos_t)
        d1 = e0 - e_sc
        r0 = np.array([0.0, 0.0, -0.5])
        v = np.array([np.sqrt(1 - cos_t**2), 0.0, -cos_t])
        r1 = r0 + 10.0 * v
        ev = make_event_set([2], [r0, r1], [d1, e_sc], [0, 1])
        rings = build_rings(ev)
        assert rings.true_eta_errors()[0] == pytest.approx(0.0, abs=1e-9)
