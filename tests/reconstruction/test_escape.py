"""Tests for three-Compton escape-energy recovery."""

import numpy as np
import pytest

from repro.physics.compton import scattered_energy
from repro.reconstruction.escape import (
    estimate_escape_energy,
    eta_with_escape_correction,
)
from tests.reconstruction.test_ordering import make_event_set


def three_hit_with_escape(e0=2.0, cos1=0.6, cos2=0.3, absorb_third=False):
    """A 3-hit chain where the photon escapes after the third hit unless
    ``absorb_third``; returns (positions, energies, e0)."""
    e_after1 = scattered_energy(e0, cos1)
    d1 = e0 - e_after1
    e_after2 = scattered_energy(e_after1, cos2)
    d2 = e_after1 - e_after2
    r0 = np.array([0.0, 0.0, -0.5])
    v1 = np.array([np.sqrt(1 - cos1**2), 0.0, -cos1])
    r1 = r0 + 11.5 * v1
    perp = np.cross(v1, [0.0, 0.0, 1.0])
    perp /= np.linalg.norm(perp)
    v2 = cos2 * v1 + np.sqrt(1 - cos2**2) * perp
    r2 = r1 + 8.0 * v2
    d3 = e_after2 if absorb_third else 0.4 * e_after2  # partial deposit
    return [r0, r1, r2], [d1, d2, d3], e0


def _true_ordering(n_hits=3):
    """An OrderingResult pinning the true order 0 -> 1 (synthetic events
    with escaped energy confuse the kinematic ordering test, which is
    itself one of the effects this estimator exists to mitigate)."""
    from repro.reconstruction.ordering import OrderingResult

    return OrderingResult(
        first=np.array([0]),
        second=np.array([1]),
        score=np.array([0.0]),
        valid=np.array([True]),
        correct=np.array([True]),
    )


class TestEstimateEscapeEnergy:
    def test_recovers_true_energy(self):
        positions, energies, e0 = three_hit_with_escape()
        ev = make_event_set([3], positions, energies, [0, 1, 2])
        est = estimate_escape_energy(ev, _true_ordering())
        assert est.applicable[0]
        assert est.energy[0] == pytest.approx(e0, rel=1e-6)
        assert est.calorimetric[0] < e0

    def test_fully_absorbed_event_consistent(self):
        positions, energies, e0 = three_hit_with_escape(absorb_third=True)
        ev = make_event_set([3], positions, energies, [0, 1, 2])
        est = estimate_escape_energy(ev)
        # Estimator and calorimeter agree when nothing escaped.
        assert est.energy[0] == pytest.approx(est.calorimetric[0], rel=1e-6)

    def test_two_hit_events_inapplicable(self):
        from tests.reconstruction.test_ordering import kinematic_two_hit

        positions, energies = kinematic_two_hit()
        ev = make_event_set([2], positions, energies, [0, 1])
        est = estimate_escape_energy(ev)
        assert not est.applicable[0]
        assert np.isnan(est.energy[0])

    def test_estimates_positive_when_applicable(self, events):
        est = estimate_escape_energy(events)
        assert np.all(est.energy[est.applicable] > 0)
        assert np.all(est.calorimetric >= 0)

    def test_improves_energy_estimate_on_simulation(self, events):
        """Among escaped >=3-hit events, the three-Compton estimate is
        closer to the true photon energy than the plain sum (median)."""
        est = estimate_escape_energy(events)
        sel = est.applicable
        if sel.sum() < 10:
            pytest.skip("too few eligible events in fixture")
        true_e = events.photon_energy[sel]
        err_est = np.abs(est.energy[sel] - true_e) / true_e
        err_cal = np.abs(est.calorimetric[sel] - true_e) / true_e
        # Restrict to events that actually lost energy.
        escaped = est.calorimetric[sel] < 0.9 * true_e
        if escaped.sum() < 5:
            pytest.skip("too few escaped events in fixture")
        assert np.median(err_est[escaped]) < np.median(err_cal[escaped])


class TestEtaCorrection:
    def test_corrected_eta_exact_on_synthetic(self):
        positions, energies, e0 = three_hit_with_escape(cos1=0.6)
        ev = make_event_set([3], positions, energies, [0, 1, 2])
        eta, corrected = eta_with_escape_correction(ev, _true_ordering())
        assert corrected[0]
        assert eta[0] == pytest.approx(0.6, abs=1e-6)

    def test_no_downward_correction(self):
        """Estimates below the measured sum never shrink the total."""
        positions, energies, _ = three_hit_with_escape(absorb_third=True)
        ev = make_event_set([3], positions, energies, [0, 1, 2])
        eta, corrected = eta_with_escape_correction(ev, min_gain_mev=0.02)
        assert not corrected[0]

    def test_shapes(self, events):
        eta, corrected = eta_with_escape_correction(events)
        assert eta.shape == (events.num_events,)
        assert corrected.shape == (events.num_events,)
