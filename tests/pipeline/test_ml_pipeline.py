"""Tests for the Fig. 6 iterative ML pipeline."""

import numpy as np
import pytest

from repro.pipeline.ml_pipeline import MLPipeline, MLPipelineConfig


class TestMLPipeline:
    def test_returns_outcome(self, events, tiny_models, exposure):
        out = tiny_models.localize(events, np.random.default_rng(0))
        assert out.direction is not None
        assert np.linalg.norm(out.direction) == pytest.approx(1.0)
        assert 1 <= out.iterations <= tiny_models.config.max_iterations
        assert out.rings_kept <= out.rings_in

    def test_localizes_near_truth(self, events, tiny_models, exposure):
        out = tiny_models.localize(events, np.random.default_rng(1))
        assert out.error_degrees(exposure.source_direction) < 30.0

    def test_background_removal_majority_correct(
        self, events, tiny_models, exposure
    ):
        out = tiny_models.localize(events, np.random.default_rng(2))
        removed = out.rings_in - out.rings_kept
        if removed > 20:
            assert out.background_removed_correct / removed > 0.5

    def test_halt_after_limits_iterations(self, events, tiny_models):
        out = tiny_models.localize(events, np.random.default_rng(3), halt_after=1)
        assert out.iterations == 1

    def test_intermediates_recorded(self, events, tiny_models):
        out = tiny_models.localize(events, np.random.default_rng(4))
        assert len(out.intermediate_directions) == out.iterations

    def test_min_rings_guard(self, events, tiny_models):
        """Even a classifier that labels everything background leaves at
        least min_rings survivors."""
        import copy

        # Deep-copy: the fixture is session-scoped and must stay intact.
        net = copy.deepcopy(tiny_models.background_net)
        net.thresholds.thresholds = np.zeros(9)  # everything called background
        aggressive = MLPipeline(
            background_net=net,
            deta_net=tiny_models.deta_net,
            config=MLPipelineConfig(min_rings=8),
        )
        out = aggressive.localize(events, np.random.default_rng(5))
        assert out.rings_kept >= 8

    def test_empty_events_fail_gracefully(self, tiny_models, geometry, response):
        from repro.detector.response import _empty_event_set

        ev = _empty_event_set(np.array([0.0, 0.0, 1.0]))
        out = tiny_models.localize(ev, np.random.default_rng(6))
        assert out.direction is None
        assert out.error_degrees(np.array([0.0, 0.0, 1.0])) == 180.0

    def test_error_degrees(self):
        from repro.pipeline.ml_pipeline import MLPipelineOutcome

        out = MLPipelineOutcome(
            direction=np.array([0.0, 0.0, 1.0]),
            iterations=1,
            converged=True,
            rings_in=10,
            rings_kept=5,
            background_removed_correct=4,
            intermediate_directions=[],
        )
        assert out.error_degrees(np.array([0.0, 1.0, 0.0])) == pytest.approx(90.0)


class TestDetaMode:
    def test_widen_only_runs(self, events, tiny_models, exposure):
        pipeline = MLPipeline(
            background_net=tiny_models.background_net,
            deta_net=tiny_models.deta_net,
            config=MLPipelineConfig(deta_mode="widen_only"),
        )
        out = pipeline.localize(events, np.random.default_rng(11))
        assert out.direction is not None
        assert out.error_degrees(exposure.source_direction) < 30.0

    def test_unknown_mode_rejected(self, events, tiny_models):
        pipeline = MLPipeline(
            background_net=tiny_models.background_net,
            deta_net=tiny_models.deta_net,
            config=MLPipelineConfig(deta_mode="shrink"),
        )
        with pytest.raises(ValueError):
            pipeline.localize(events, np.random.default_rng(12))


class TestAccuracyTarget:
    def test_loose_target_halts_early(self, events, tiny_models):
        pipeline = MLPipeline(
            background_net=tiny_models.background_net,
            deta_net=tiny_models.deta_net,
            config=MLPipelineConfig(accuracy_target_deg=45.0),
        )
        out = pipeline.localize(events, np.random.default_rng(13))
        assert out.converged
        assert out.iterations <= 2


class TestSkymapThreading:
    def test_skymap_attached_when_configured(self, events, tiny_models, exposure):
        from repro.localization.hierarchy import SkymapConfig

        pipeline = MLPipeline(
            background_net=tiny_models.background_net,
            deta_net=tiny_models.deta_net,
            config=MLPipelineConfig(
                skymap=SkymapConfig(resolution_deg=1.0)
            ),
        )
        out = pipeline.localize(events, np.random.default_rng(14))
        assert out.sky is not None
        assert out.sky.probability.sum() == pytest.approx(1.0)
        assert out.sky.probability_within(exposure.source_direction, 30.0) > 0.5

    def test_no_skymap_by_default(self, events, tiny_models):
        out = tiny_models.localize(events, np.random.default_rng(15))
        assert out.sky is None
