"""Shared fixtures for the test suite.

Expensive artifacts (a simulated exposure, digitized events, reconstructed
rings, small trained networks) are session-scoped so the many tests that
need realistic inputs pay for them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detector.response import DetectorResponse
from repro.geometry.tiles import adapt_geometry
from repro.localization.pipeline import prepare_rings
from repro.sources.background import BackgroundModel
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource


@pytest.fixture(scope="session")
def geometry():
    return adapt_geometry()


@pytest.fixture(scope="session")
def response(geometry):
    return DetectorResponse(geometry)


@pytest.fixture(scope="session")
def exposure(geometry):
    """One standard exposure: 1 MeV/cm^2 burst at polar 20 + background."""
    rng = np.random.default_rng(1234)
    grb = GRBSource(fluence_mev_cm2=1.0, polar_angle_deg=20.0, azimuth_deg=40.0)
    return simulate_exposure(geometry, rng, grb, BackgroundModel())


@pytest.fixture(scope="session")
def events(exposure, response):
    rng = np.random.default_rng(99)
    return response.digitize(exposure.transport, exposure.batch, rng, min_hits=2)


@pytest.fixture(scope="session")
def rings(events):
    return prepare_rings(events)


@pytest.fixture(scope="session")
def training_data(geometry, response):
    """A small training campaign (3 angles, few exposures) for model tests."""
    from repro.experiments.datasets import generate_training_rings

    return generate_training_rings(
        geometry,
        response,
        seed=77,
        polar_angles_deg=np.array([0.0, 40.0, 80.0]),
        exposures_per_angle=3,
    )


@pytest.fixture(scope="session")
def tiny_models(training_data):
    """Small trained networks (reduced widths/epochs) for pipeline tests."""
    from repro.experiments.modelzoo import train_models
    from repro.models.background import BackgroundTrainConfig
    from repro.models.deta import DEtaTrainConfig, train_deta_net
    from repro.models.background import train_background_net
    from repro.pipeline.ml_pipeline import MLPipeline
    from repro.sources.grb import LABEL_BACKGROUND

    rng = np.random.default_rng(5)
    data = training_data
    bnet = train_background_net(
        data.features,
        (data.labels == LABEL_BACKGROUND).astype(float),
        data.polar_true,
        rng,
        config=BackgroundTrainConfig(
            hidden_widths=(32, 16), max_epochs=25, patience=8
        ),
    )
    grb = data.grb_only()
    dnet = train_deta_net(
        grb.features,
        grb.true_eta_errors,
        rng,
        config=DEtaTrainConfig(hidden_widths=(8, 8), max_epochs=25, patience=8),
    )
    return MLPipeline(background_net=bnet, deta_net=dnet)
