"""Tests for cross sections / attenuation coefficients."""

import numpy as np
import pytest

from repro.constants import (
    CLASSICAL_ELECTRON_RADIUS_CM,
    CSI,
    PLASTIC,
)
from repro.physics.crosssections import (
    PAIR_THRESHOLD_MEV,
    compton_mu,
    interaction_probabilities,
    klein_nishina_total,
    pair_mu,
    photoelectric_mu,
    total_mu,
)

THOMSON_CM2 = 8.0 * np.pi / 3.0 * CLASSICAL_ELECTRON_RADIUS_CM**2


class TestKleinNishinaTotal:
    def test_thomson_limit(self):
        assert klein_nishina_total(1e-5) == pytest.approx(THOMSON_CM2, rel=1e-3)

    def test_monotonic_decreasing(self):
        e = np.geomspace(0.01, 100, 100)
        sigma = klein_nishina_total(e)
        assert np.all(np.diff(sigma) < 0)

    def test_known_value_at_511kev(self):
        # sigma(k=1) ~ 0.4318 sigma_Thomson (standard result).
        ratio = klein_nishina_total(0.511) / THOMSON_CM2
        assert ratio == pytest.approx(0.4318, rel=0.81e-2)


class TestAttenuation:
    def test_photoelectric_dominates_low_energy_csi(self):
        assert photoelectric_mu(0.05, CSI) > compton_mu(0.05, CSI)

    def test_compton_dominates_mev_csi(self):
        assert compton_mu(1.0, CSI) > photoelectric_mu(1.0, CSI)

    def test_pe_negligible_in_plastic(self):
        assert photoelectric_mu(0.1, PLASTIC) < 0.02 * compton_mu(0.1, PLASTIC)

    def test_pair_zero_below_threshold(self):
        assert pair_mu(1.0, CSI) == 0.0
        assert pair_mu(PAIR_THRESHOLD_MEV, CSI) == 0.0

    def test_pair_rises_above_threshold(self):
        assert pair_mu(5.0, CSI) > 0.0
        assert pair_mu(20.0, CSI) > pair_mu(5.0, CSI)

    def test_total_is_sum(self):
        e = np.geomspace(0.03, 30, 20)
        assert np.allclose(
            total_mu(e, CSI),
            compton_mu(e, CSI) + photoelectric_mu(e, CSI) + pair_mu(e, CSI),
        )

    def test_csi_mean_free_path_at_1mev(self):
        # CsI mu/rho ~ 0.055-0.06 cm^2/g at 1 MeV -> mu ~ 0.25/cm.
        mu = total_mu(1.0, CSI)
        assert 0.15 < mu < 0.4

    def test_density_scaling(self):
        assert compton_mu(1.0, CSI) / compton_mu(1.0, PLASTIC) == pytest.approx(
            CSI.electron_density_cm3 / PLASTIC.electron_density_cm3
        )


class TestInteractionProbabilities:
    def test_sum_to_one(self):
        e = np.geomspace(0.03, 30, 50)
        p_c, p_pe, p_pp = interaction_probabilities(e, CSI)
        assert np.allclose(p_c + p_pe + p_pp, 1.0)

    def test_all_nonnegative(self):
        e = np.geomspace(0.03, 30, 50)
        for p in interaction_probabilities(e, CSI):
            assert np.all(p >= 0.0)

    def test_compton_fraction_rises_then_pair_takes_over(self):
        p_c_low = interaction_probabilities(np.array([0.05]), CSI)[0][0]
        p_c_mid = interaction_probabilities(np.array([1.0]), CSI)[0][0]
        assert p_c_mid > p_c_low
        p_pp_high = interaction_probabilities(np.array([30.0]), CSI)[2][0]
        assert p_pp_high > 0.1
