"""Tests for the Monte-Carlo photon transport."""

import numpy as np
import pytest

from repro.physics.transport import (
    FATE_ABSORBED,
    FATE_ESCAPED,
    FATE_NO_INTERACTION,
    transport_photons,
)


def _vertical_batch(geometry, rng, n=5000, energy=0.5):
    half = geometry.half_size * 0.9
    origins = np.stack(
        [
            rng.uniform(-half, half, n),
            rng.uniform(-half, half, n),
            np.full(n, 1.0),
        ],
        axis=1,
    )
    directions = np.tile([0.0, 0.0, -1.0], (n, 1))
    energies = np.full(n, energy)
    return origins, directions, energies


class TestTransportBasics:
    def test_missing_photons_never_interact(self, geometry):
        rng = np.random.default_rng(0)
        origins = np.array([[200.0, 0.0, 1.0]])
        directions = np.array([[0.0, 0.0, -1.0]])
        res = transport_photons(geometry, origins, directions, np.array([1.0]), rng)
        assert res.num_hits == 0
        assert res.fate[0] == FATE_NO_INTERACTION
        assert res.escaped_energy[0] == pytest.approx(1.0)

    def test_hits_inside_scintillator(self, geometry):
        rng = np.random.default_rng(1)
        res = transport_photons(geometry, *_vertical_batch(geometry, rng), rng=rng)
        assert res.num_hits > 0
        assert np.all(geometry.contains(res.positions))

    def test_energy_conservation_absorbed(self, geometry):
        rng = np.random.default_rng(2)
        origins, dirs, energies = _vertical_batch(geometry, rng)
        res = transport_photons(geometry, origins, dirs, energies, rng)
        sums = np.zeros(len(energies))
        np.add.at(sums, res.photon_index, res.energies)
        absorbed = res.fate == FATE_ABSORBED
        assert np.allclose(sums[absorbed], energies[absorbed])

    def test_energy_conservation_escaped(self, geometry):
        rng = np.random.default_rng(3)
        origins, dirs, energies = _vertical_batch(geometry, rng)
        res = transport_photons(geometry, origins, dirs, energies, rng)
        sums = np.zeros(len(energies))
        np.add.at(sums, res.photon_index, res.energies)
        escaped = res.fate == FATE_ESCAPED
        assert np.any(escaped)
        assert np.allclose(
            sums[escaped] + res.escaped_energy[escaped], energies[escaped]
        )

    def test_deposits_positive(self, geometry):
        rng = np.random.default_rng(4)
        res = transport_photons(geometry, *_vertical_batch(geometry, rng), rng=rng)
        assert np.all(res.energies > 0)

    def test_order_counts_consecutive(self, geometry):
        rng = np.random.default_rng(5)
        res = transport_photons(geometry, *_vertical_batch(geometry, rng), rng=rng)
        multi = np.nonzero(res.num_interactions >= 2)[0][:50]
        for p in multi:
            hits = res.hits_of(int(p))
            assert np.array_equal(
                res.order[hits], np.arange(res.num_interactions[p])
            )

    def test_deterministic_same_seed(self, geometry):
        o, d, e = _vertical_batch(geometry, np.random.default_rng(6), n=500)
        r1 = transport_photons(geometry, o, d, e, np.random.default_rng(7))
        r2 = transport_photons(geometry, o, d, e, np.random.default_rng(7))
        assert np.array_equal(r1.positions, r2.positions)
        assert np.array_equal(r1.fate, r2.fate)


class TestTransportPhysics:
    def test_interaction_fraction_reasonable(self, geometry):
        """~6 cm CsI at 0.5 MeV: interaction prob = 1 - exp(-mu * 6)."""
        from repro.constants import CSI
        from repro.physics.crosssections import total_mu

        rng = np.random.default_rng(8)
        o, d, e = _vertical_batch(geometry, rng, n=20000, energy=0.5)
        res = transport_photons(geometry, o, d, e, rng)
        frac = (res.num_interactions > 0).mean()
        path = geometry.num_layers * geometry.layers[0].thickness
        expected = 1.0 - np.exp(-total_mu(0.5, CSI) * path)
        assert frac == pytest.approx(expected, abs=0.02)

    def test_multi_compton_events_exist(self, geometry):
        rng = np.random.default_rng(9)
        res = transport_photons(geometry, *_vertical_batch(geometry, rng), rng=rng)
        assert (res.num_interactions >= 2).sum() > 50

    def test_low_energy_mostly_single_hit(self, geometry):
        """Photoelectric dominates at 60 keV: single-hit absorption."""
        rng = np.random.default_rng(10)
        o, d, e = _vertical_batch(geometry, rng, n=5000, energy=0.06)
        res = transport_photons(geometry, o, d, e, rng)
        interacting = res.num_interactions[res.num_interactions > 0]
        assert (interacting == 1).mean() > 0.8

    def test_max_generations_respected(self, geometry):
        rng = np.random.default_rng(11)
        o, d, e = _vertical_batch(geometry, rng, n=2000, energy=5.0)
        res = transport_photons(geometry, o, d, e, rng, max_generations=3)
        assert res.num_interactions.max() <= 3


class TestTransportValidation:
    def test_rejects_zero_direction(self, geometry):
        with pytest.raises(ValueError):
            transport_photons(
                geometry,
                np.zeros((1, 3)),
                np.zeros((1, 3)),
                np.array([1.0]),
                np.random.default_rng(0),
            )

    def test_rejects_nonpositive_energy(self, geometry):
        with pytest.raises(ValueError):
            transport_photons(
                geometry,
                np.zeros((1, 3)),
                np.array([[0.0, 0.0, -1.0]]),
                np.array([0.0]),
                np.random.default_rng(0),
            )

    def test_rejects_length_mismatch(self, geometry):
        with pytest.raises(ValueError):
            transport_photons(
                geometry,
                np.zeros((2, 3)),
                np.array([[0.0, 0.0, -1.0]]),
                np.array([1.0, 1.0]),
                np.random.default_rng(0),
            )
