"""Property-based tests of transport invariants over random configurations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.tiles import adapt_geometry
from repro.physics.transport import (
    FATE_ABSORBED,
    FATE_ESCAPED,
    FATE_MAX_GENERATIONS,
    FATE_NO_INTERACTION,
    transport_photons,
)

geometry_configs = st.tuples(
    st.integers(min_value=1, max_value=6),        # layers
    st.floats(min_value=10.0, max_value=60.0),    # tile size
    st.floats(min_value=0.5, max_value=3.0),      # thickness
    st.floats(min_value=0.0, max_value=15.0),     # gap
)


@given(
    geometry_configs,
    st.floats(min_value=0.05, max_value=10.0),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_transport_invariants(config, energy, seed):
    """For any slab stack and photon energy:

    - every hit lies inside scintillator,
    - deposits are positive and (with escapes) sum to the photon energy,
    - fates are consistent with interaction counts.
    """
    layers, size, thickness, gap = config
    geometry = adapt_geometry(
        num_layers=layers,
        tile_size_cm=size,
        tile_thickness_cm=thickness,
        layer_gap_cm=gap,
    )
    rng = np.random.default_rng(seed)
    n = 300
    half = geometry.half_size
    origins = np.stack(
        [
            rng.uniform(-half, half, n),
            rng.uniform(-half, half, n),
            np.full(n, 1.0),
        ],
        axis=1,
    )
    # Random downward directions.
    directions = rng.normal(size=(n, 3))
    directions[:, 2] = -np.abs(directions[:, 2]) - 0.1
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    energies = np.full(n, energy)

    res = transport_photons(geometry, origins, directions, energies, rng)

    if res.num_hits:
        assert np.all(geometry.contains(res.positions))
        assert np.all(res.energies > 0)

    sums = np.zeros(n)
    np.add.at(sums, res.photon_index, res.energies)
    assert np.allclose(sums + res.escaped_energy, energies, atol=1e-9)

    no_int = res.fate == FATE_NO_INTERACTION
    assert np.all(res.num_interactions[no_int] == 0)
    interacted = res.fate != FATE_NO_INTERACTION
    assert np.all(res.num_interactions[interacted] >= 1)
    absorbed = res.fate == FATE_ABSORBED
    assert np.allclose(res.escaped_energy[absorbed], 0.0)
    escaped = res.fate == FATE_ESCAPED
    assert np.all(res.escaped_energy[escaped] > 0)
    alive_at_cap = res.fate == FATE_MAX_GENERATIONS
    assert np.all(res.escaped_energy[alive_at_cap] > 0)


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=10, deadline=None)
def test_transport_photon_count_conserved(seed):
    """Every input photon gets exactly one fate."""
    geometry = adapt_geometry()
    rng = np.random.default_rng(seed)
    n = 200
    origins = np.tile([0.0, 0.0, 1.0], (n, 1))
    directions = np.tile([0.0, 0.0, -1.0], (n, 1))
    energies = rng.uniform(0.05, 5.0, n)
    res = transport_photons(geometry, origins, directions, energies, rng)
    assert res.num_photons == n
    assert res.fate.shape == (n,)
    assert set(np.unique(res.fate)).issubset({0, 1, 2, 3})
