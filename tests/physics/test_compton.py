"""Tests for Compton kinematics and Klein--Nishina sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import ELECTRON_MASS_MEV
from repro.physics.compton import (
    cos_theta_from_energies,
    klein_nishina_differential,
    rotate_directions,
    sample_klein_nishina,
    scattered_energy,
)


class TestScatteredEnergy:
    def test_forward_scatter_no_loss(self):
        assert scattered_energy(1.0, 1.0) == pytest.approx(1.0)

    def test_backscatter_limit(self):
        # E' -> m_e/2 as E -> inf at cos theta = -1.
        e = scattered_energy(1000.0, -1.0)
        assert e == pytest.approx(ELECTRON_MASS_MEV / 2.0, rel=1e-2)

    def test_90_degree(self):
        e0 = 0.511
        expected = e0 / (1.0 + e0 / ELECTRON_MASS_MEV)
        assert scattered_energy(e0, 0.0) == pytest.approx(expected, rel=1e-6)

    @given(
        st.floats(min_value=0.03, max_value=30.0),
        st.floats(min_value=-1.0, max_value=1.0),
    )
    @settings(max_examples=100)
    def test_energy_never_gains(self, energy, cos_t):
        assert scattered_energy(energy, cos_t) <= energy + 1e-12


class TestCosThetaFromEnergies:
    @given(
        st.floats(min_value=0.1, max_value=30.0),
        st.floats(min_value=-0.99, max_value=0.99),
    )
    @settings(max_examples=100)
    def test_inverse_of_scattered_energy(self, energy, cos_t):
        """cos_theta_from_energies inverts the Compton formula exactly."""
        e_scattered = scattered_energy(energy, cos_t)
        deposit = energy - e_scattered
        recovered = cos_theta_from_energies(energy, deposit)
        assert recovered == pytest.approx(cos_t, abs=1e-9)

    def test_unphysical_energies_exceed_range(self):
        # Depositing almost all the energy of a low-energy photon implies
        # an impossible scattering angle (|eta| > 1).
        eta = cos_theta_from_energies(np.array([0.2]), np.array([0.19]))
        assert abs(eta[0]) > 1.0

    def test_zero_deposit_gives_forward(self):
        eta = cos_theta_from_energies(np.array([1.0]), np.array([0.0]))
        assert eta[0] == pytest.approx(1.0)


class TestKleinNishinaDifferential:
    def test_positive_everywhere(self):
        cos = np.linspace(-1, 1, 201)
        for e in [0.03, 0.3, 3.0, 30.0]:
            assert np.all(klein_nishina_differential(np.full_like(cos, e), cos) > 0)

    def test_maximum_at_forward(self):
        cos = np.linspace(-1, 1, 201)
        for e in [0.03, 0.3, 3.0, 30.0]:
            vals = klein_nishina_differential(np.full_like(cos, e), cos)
            assert np.argmax(vals) == len(cos) - 1

    def test_forward_value_is_two(self):
        assert klein_nishina_differential(1.0, 1.0) == pytest.approx(2.0)

    def test_thomson_limit_symmetric(self):
        # At E -> 0 the distribution approaches (1 + cos^2)/... symmetric.
        lo = klein_nishina_differential(1e-4, -0.5)
        hi = klein_nishina_differential(1e-4, 0.5)
        assert lo == pytest.approx(hi, rel=1e-3)


class TestSampleKleinNishina:
    def test_output_in_range(self):
        rng = np.random.default_rng(0)
        c = sample_klein_nishina(np.geomspace(0.03, 30, 5000), rng)
        assert np.all(c >= -1.0) and np.all(c <= 1.0)

    def test_distribution_matches_analytic(self):
        """Chi-square GoF against bin-integrated analytic probabilities."""
        rng = np.random.default_rng(1)
        e = 2.0
        n = 100_000
        samples = sample_klein_nishina(np.full(n, e), rng)
        edges = np.linspace(-1, 1, 41)
        hist, _ = np.histogram(samples, bins=edges)
        fine = np.linspace(-1, 1, 20001)
        pdf = klein_nishina_differential(np.full_like(fine, e), fine)
        cdf = np.concatenate(
            [[0], np.cumsum(0.5 * (pdf[1:] + pdf[:-1]) * np.diff(fine))]
        )
        cdf /= cdf[-1]
        expected = n * np.diff(np.interp(edges, fine, cdf))
        mask = expected > 25
        z = (hist[mask] - expected[mask]) / np.sqrt(expected[mask])
        assert (z**2).mean() < 2.0

    def test_high_energy_forward_peaked(self):
        rng = np.random.default_rng(2)
        lo = sample_klein_nishina(np.full(20000, 0.05), rng)
        hi = sample_klein_nishina(np.full(20000, 20.0), rng)
        assert hi.mean() > lo.mean() + 0.3

    def test_deterministic_with_seed(self):
        a = sample_klein_nishina(np.full(100, 1.0), np.random.default_rng(3))
        b = sample_klein_nishina(np.full(100, 1.0), np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestRotateDirections:
    def test_preserves_unit_norm(self):
        rng = np.random.default_rng(0)
        d = rng.normal(size=(200, 3))
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        cos_t = rng.uniform(-1, 1, 200)
        phi = rng.uniform(0, 2 * np.pi, 200)
        out = rotate_directions(d, cos_t, phi)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_rotation_angle_correct(self):
        rng = np.random.default_rng(1)
        d = rng.normal(size=(200, 3))
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        cos_t = rng.uniform(-1, 1, 200)
        phi = rng.uniform(0, 2 * np.pi, 200)
        out = rotate_directions(d, cos_t, phi)
        dots = np.einsum("ij,ij->i", d, out)
        assert np.allclose(dots, cos_t, atol=1e-9)

    def test_handles_z_aligned(self):
        d = np.array([[0.0, 0.0, 1.0], [0.0, 0.0, -1.0]])
        out = rotate_directions(d, np.array([0.5, 0.5]), np.array([0.3, 1.2]))
        assert np.allclose(np.einsum("ij,ij->i", d, out), 0.5)

    def test_identity_at_zero_angle(self):
        d = np.array([[0.6, 0.0, 0.8]])
        out = rotate_directions(d, np.array([1.0]), np.array([2.0]))
        assert np.allclose(out, d, atol=1e-9)

    def test_azimuth_spreads_uniformly(self):
        """Rotated vectors at fixed theta cover the cone azimuthally."""
        n = 5000
        d = np.tile([0.0, 0.0, -1.0], (n, 1))
        rng = np.random.default_rng(4)
        phi = rng.uniform(0, 2 * np.pi, n)
        out = rotate_directions(d, np.zeros(n), phi)
        # Perpendicular components should average to ~zero.
        assert abs(out[:, 0].mean()) < 0.05
        assert abs(out[:, 1].mean()) < 0.05
