"""Tests for photon energy spectra."""

import numpy as np
import pytest

from repro.physics.spectra import BandSpectrum, PowerLawSpectrum


class TestPowerLaw:
    def test_samples_within_bounds(self):
        spec = PowerLawSpectrum(index=-2.0, e_min=0.03, e_max=30.0)
        rng = np.random.default_rng(0)
        e = spec.sample(10000, rng)
        assert e.min() >= 0.03 and e.max() <= 30.0

    def test_exact_distribution(self):
        """Analytic CDF comparison for the closed-form sampler."""
        spec = PowerLawSpectrum(index=-2.0, e_min=0.1, e_max=10.0)
        rng = np.random.default_rng(1)
        e = np.sort(spec.sample(50000, rng))
        # CDF of E^-2 on [a,b]: (1/a - 1/x) / (1/a - 1/b)
        a, b = 0.1, 10.0
        cdf = (1 / a - 1 / e) / (1 / a - 1 / b)
        empirical = np.arange(1, e.size + 1) / e.size
        assert np.abs(cdf - empirical).max() < 0.01  # KS-like bound

    def test_log_uniform_special_case(self):
        spec = PowerLawSpectrum(index=-1.0, e_min=0.1, e_max=10.0)
        rng = np.random.default_rng(2)
        e = spec.sample(50000, rng)
        # log-uniform: median = geometric mean of bounds.
        assert np.median(e) == pytest.approx(1.0, rel=0.05)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            PowerLawSpectrum(e_min=1.0, e_max=0.5)

    def test_mean_energy_analytic(self):
        spec = PowerLawSpectrum(index=-2.0, e_min=0.1, e_max=10.0)
        # <E> = ln(b/a) / (1/a - 1/b) for index -2.
        expected = np.log(100.0) / (10.0 - 0.1)
        assert spec.mean_energy() == pytest.approx(expected, rel=1e-3)


class TestBand:
    def test_continuous_at_break(self):
        spec = BandSpectrum(alpha=-0.5, beta=-2.35, e_peak=0.5)
        eb = spec._e_break
        below = spec.pdf_unnormalized(np.array([eb * 0.9999]))
        above = spec.pdf_unnormalized(np.array([eb * 1.0001]))
        assert below[0] == pytest.approx(above[0], rel=1e-2)

    def test_high_energy_power_law(self):
        spec = BandSpectrum(alpha=-0.5, beta=-2.35, e_peak=0.5)
        e1, e2 = 5.0, 10.0
        ratio = (
            spec.pdf_unnormalized(np.array([e2]))[0]
            / spec.pdf_unnormalized(np.array([e1]))[0]
        )
        assert ratio == pytest.approx((e2 / e1) ** -2.35, rel=1e-6)

    def test_samples_within_bounds(self):
        spec = BandSpectrum()
        rng = np.random.default_rng(3)
        e = spec.sample(10000, rng)
        assert e.min() >= spec.e_min and e.max() <= spec.e_max

    def test_sampler_matches_pdf(self):
        spec = BandSpectrum()
        rng = np.random.default_rng(4)
        e = spec.sample(100_000, rng)
        edges = np.geomspace(spec.e_min, spec.e_max, 30)
        hist, _ = np.histogram(e, bins=edges)
        grid = np.geomspace(spec.e_min, spec.e_max, 20001)
        pdf = spec.pdf_unnormalized(grid)
        cdf = np.concatenate(
            [[0], np.cumsum(0.5 * (pdf[1:] + pdf[:-1]) * np.diff(grid))]
        )
        cdf /= cdf[-1]
        expected = e.size * np.diff(np.interp(edges, grid, cdf))
        mask = expected > 25
        z = (hist[mask] - expected[mask]) / np.sqrt(expected[mask])
        assert (z**2).mean() < 2.5

    def test_alpha_beta_ordering_enforced(self):
        with pytest.raises(ValueError):
            BandSpectrum(alpha=-3.0, beta=-2.0)

    def test_mean_energy_in_range(self):
        spec = BandSpectrum()
        m = spec.mean_energy()
        assert spec.e_min < m < spec.e_max
        # Band spectra are soft: the mean sits well below 1 MeV.
        assert m < 1.0
