"""The op-benchmark registry: coverage, timing contract, and hygiene."""

import numpy as np
import pytest

import repro.perf as perf
from repro.perf.registry import OpBenchmark, run_benchmark


class TestCoverage:
    def test_every_plan_op_class_is_covered(self):
        """The CI gate's core invariant, pinned here too: no op class in
        repro.infer.plan without a registered benchmark."""
        assert perf.missing_ops() == frozenset()

    def test_plan_op_discovery_sees_all_known_ops(self):
        assert perf.plan_op_names() >= {
            "LinearOp",
            "AffineOp",
            "ActivationOp",
            "QuantizeOp",
            "Int8LinearOp",
            "DequantizeOp",
        }

    def test_gather_scatter_path_is_tracked(self):
        assert "GatherScratch" in perf.covered_ops()

    def test_registered_is_name_sorted_and_unique(self):
        names = [bench.name for bench in perf.registered()]
        assert names == sorted(names)
        assert len(names) == len(set(names))


class TestBenchmarkContract:
    @pytest.mark.parametrize(
        "bench", perf.registered(), ids=lambda bench: bench.name
    )
    def test_build_returns_callable_and_rows(self, bench):
        fn, rows = bench.build()
        assert callable(fn)
        assert rows > 0
        assert fn() is not None

    def test_workloads_are_deterministic(self):
        """build() twice must produce identical outputs — fixed-seed
        fixtures are what make report-to-report deltas meaningful."""
        (entry,) = [
            b for b in perf.registered() if b.name == "int8_linear_block597"
        ]
        fn_a, _ = entry.build()
        fn_b, _ = entry.build()
        np.testing.assert_array_equal(fn_a(), fn_b())


class TestRunner:
    def test_run_benchmark_reports_rows_per_s(self):
        bench = OpBenchmark(
            name="noop", op="Test", build=lambda: ((lambda: 0), 100)
        )
        rows_per_s = run_benchmark(bench, rounds=2, min_time=0.001)
        assert rows_per_s > 0

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):

            @perf.register("linear_f32_block597", op="LinearOp")
            def _clash():  # pragma: no cover - never called
                return (lambda: 0), 1

    def test_run_all_covers_every_entry(self):
        results = perf.run_all(rounds=1, min_time=0.0005)
        assert set(results) == {b.name for b in perf.registered()}
        assert all(v > 0 for v in results.values())
