"""Inline-suppression semantics: line scope, file scope, wildcards."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "src" / "sup"


@pytest.fixture(scope="module")
def result():
    """Analysis of the suppression fixtures only."""
    return analyze_paths([FIXTURES])


def active(result, filename):
    return [f for f in result.findings if Path(f.path).name == filename]


def suppressed(result, filename):
    return [f for f in result.suppressed if Path(f.path).name == filename]


def test_line_suppression_silences_only_that_line(result):
    assert not [
        f for f in active(result, "suppressed_line.py") if f.rule_id == "DET001"
    ]
    sup = suppressed(result, "suppressed_line.py")
    assert [f.rule_id for f in sup] == ["DET001"]


def test_file_suppression_covers_every_occurrence(result):
    assert not [
        f for f in active(result, "suppressed_file.py") if f.rule_id == "DET001"
    ]
    assert len(suppressed(result, "suppressed_file.py")) == 2


def test_all_wildcard_silences_every_rule_on_the_line(result):
    assert not active(result, "suppressed_all.py")
    ids = {f.rule_id for f in suppressed(result, "suppressed_all.py")}
    assert "DET002" in ids


def test_suppression_for_other_rule_does_not_silence(result):
    ids = [f.rule_id for f in active(result, "unrelated_suppress.py")]
    assert ids == ["DET001"]
    assert not suppressed(result, "unrelated_suppress.py")
