"""Bad: wall-clock read inside a kernel package."""
import time


def timed_kernel(x):
    """Return the input plus the current time (run-dependent!)."""
    return x + time.time()
