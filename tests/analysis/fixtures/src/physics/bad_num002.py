"""Bad: bare division by a measured quantity in a physics module."""


def ratio(energy_out, energy_in):
    """Divide by an unguarded measurement."""
    return energy_out / energy_in
