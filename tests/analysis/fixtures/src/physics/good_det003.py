"""Good: kernel is a pure function of its inputs."""


def kernel(x, t):
    """Timestamps come in as arguments."""
    return x + t
