"""Good: denominators are guarded or structurally nonzero."""
import numpy as np

SCALE = 4.0


def ratio(energy_out, energy_in):
    """Divide by a floored measurement."""
    denom = np.maximum(energy_in, 1e-12)
    return energy_out / denom


def offset_ratio(x, y):
    """The 1 + y**2 denominator carries a positive offset."""
    return x / (1.0 + y**2)


def scaled(x):
    """Module ALL_CAPS constants are trusted."""
    return x / SCALE
