"""Good: every domain-restricted call is visibly guarded."""
import numpy as np


def angles(cos_theta):
    """arccos of clipped values."""
    return np.arccos(np.clip(cos_theta, -1.0, 1.0))


def widths(variance):
    """sqrt of a floored radicand."""
    return np.sqrt(np.maximum(variance, 0.0))


def validated(x):
    """Early-exit validation also counts as a guard."""
    if x < 0:
        raise ValueError("x must be nonnegative")
    return np.sqrt(x)
