"""Bad: domain-restricted calls with no visible guard."""
import numpy as np


def angles(cos_theta):
    """arccos of unclipped measured values."""
    return np.arccos(cos_theta)


def widths(variance):
    """sqrt of an unguarded measurement."""
    return np.sqrt(variance)
