"""Good: the generator is required, never silently minted."""
import numpy as np


def sample(n, rng):
    """Draw from the mandatory generator."""
    if rng is None:
        raise ValueError("rng is required")
    return rng.uniform(size=n)
