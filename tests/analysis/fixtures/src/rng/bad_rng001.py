"""Bad: generator minted from a hard-coded literal seed."""
import numpy as np


def stream():
    """Every call site shares this one stream."""
    return np.random.default_rng(42)
