"""Good: seed flows in from the campaign SeedSequence."""
import numpy as np


def stream(seed_seq):
    """Derive the generator from the campaign seed."""
    return np.random.default_rng(seed_seq)
