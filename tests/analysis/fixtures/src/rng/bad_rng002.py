"""Bad: silent rng fallbacks in both syntactic forms."""
import numpy as np


def sample_or(n, rng=None):
    """Boolean-or fallback."""
    rng = rng or np.random.default_rng(7)
    return rng.uniform(size=n)


def sample_if(n, rng=None):
    """If-None fallback."""
    if rng is None:
        rng = np.random.default_rng(seed=7)
    return rng.uniform(size=n)
