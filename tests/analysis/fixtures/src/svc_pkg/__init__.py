"""Mini service package for multi-entry WRK001 reachability tests."""
