"""Bad: mutable module state on the service path."""

SESSIONS = {}


def lookup(key):
    """Read-through session table (mutates module state!)."""
    if key not in SESSIONS:
        SESSIONS[key] = object()
    return SESSIONS[key]
