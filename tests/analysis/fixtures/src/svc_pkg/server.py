"""Service entry module: imports the state module below."""
from svc_pkg import svc_state


def handle(request):
    """Serve one request (reads package state)."""
    return svc_state.lookup(request)
