"""Bad: OS-entropy-seeded generator."""
import numpy as np


def fresh_stream():
    """Mint an irreproducible generator."""
    return np.random.default_rng()
