"""Bad: legacy np.random global-state API."""
import numpy as np


def draw(n):
    """Draw from the hidden global stream."""
    np.random.seed(123)
    return np.random.rand(n)
