"""Good: generator derived from a caller-supplied seed."""
import numpy as np


def stream(seed):
    """Mint a generator from an explicit seed."""
    return np.random.default_rng(seed)
