"""Good: draws come from an explicit Generator."""
import numpy as np


def draw(n, rng: np.random.Generator):
    """Draw from the threaded generator."""
    return rng.uniform(size=n)
