"""Bad: ungated per-request telemetry in a serve flush loop."""
from repro import obs


def flush_round(jobs):
    """Observes a latency per job — O(jobs) overhead per round."""
    done = []
    for job in jobs:
        done.append(job)
        obs.observe("serve.request_ms", 1.0)
    return done
