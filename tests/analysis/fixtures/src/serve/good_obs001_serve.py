"""Good: gated per-request telemetry, stage-granular counters."""
from repro import obs


def flush_round(jobs):
    """Per-request latency only when telemetry is on; one bump per round."""
    done = []
    for job in jobs:
        done.append(job)
        if obs.is_enabled():
            obs.observe("serve.request_ms", 1.0)
    obs.inc("serve.rounds")
    return done
