"""Bad: mutable module state on the worker path."""

CACHE = {}

GOOD_TABLE = (1, 2, 3)


def lookup(key):
    """Read-through cache (mutates module state!)."""
    if key not in CACHE:
        CACHE[key] = key * 2
    return CACHE[key]
