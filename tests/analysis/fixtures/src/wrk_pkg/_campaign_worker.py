"""Worker entry module: imports the state module below."""
from wrk_pkg import state


def run_task(payload):
    """Execute one task (reads package state)."""
    return state.lookup(payload)
