"""Mini campaign-worker package for WRK001 reachability tests."""
