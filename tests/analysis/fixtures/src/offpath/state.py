"""Mutable module state NOT reachable from the worker entry."""

SCRATCH = {}


def note(key, value):
    """Record a value (fine: never runs in a worker)."""
    SCRATCH[key] = value
