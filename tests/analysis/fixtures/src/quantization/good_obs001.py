"""Good: stage-granular spans, and per-row telemetry behind the gate."""
from repro import obs


def quantize_rows(rows):
    """One span around the loop, one counter bump for the block."""
    out = []
    with obs.span("quantize.rows"):
        for row in rows:
            out.append(row * 2)
    obs.inc("quantize.rows", len(rows))
    return out


def requant_blocks(blocks):
    """Per-row telemetry is fine when gated on the enable flag."""
    i = 0
    while i < len(blocks):
        if obs.is_enabled():
            obs.observe("requant.block_ms", 1.0)
        i += 1
    return i
