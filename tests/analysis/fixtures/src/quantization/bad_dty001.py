"""Bad: narrowing cast with no clip to the target range."""
import numpy as np


def quantize(x):
    """Wraps modulo 256 where the FPGA would saturate."""
    return x.astype(np.int8)
