"""Bad: ungated telemetry calls inside per-row kernel loops."""
from repro import obs
from repro.obs import metrics


def quantize_rows(rows):
    """Opens a span and bumps a counter per row — O(rows) overhead."""
    out = []
    for row in rows:
        with obs.span("quantize.row"):
            out.append(row * 2)
        metrics.inc("quantize.rows")
    return out


def requant_blocks(blocks):
    """Per-iteration histogram observation in a while loop."""
    i = 0
    while i < len(blocks):
        obs.observe("requant.block_ms", 1.0)
        i += 1
    return i
