"""Good: widened arrays cached at construction; hot path cast-free.

Narrowing casts (clipped) stay fine in a hot path, and reference
implementations kept for parity assertions may widen per call.
"""
import numpy as np


class Layer:
    def __init__(self, weight):
        self.weight = weight
        self._weight_wide = weight.astype(np.int64)

    def forward_int(self, x):
        """Uses the construction-time cache; clipped narrowing is fine."""
        acc = x @ self._weight_wide
        return np.clip(acc, 0, 255).astype(np.int32)

    def _reference_forward_int(self, x):
        """Retained parity reference: exempt from the hot-path rule."""
        return x.astype(np.int64) @ self.weight.astype(np.int64)
