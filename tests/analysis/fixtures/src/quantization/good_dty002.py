"""Good: every constructor names its width."""
import numpy as np


def accumulator(n):
    """Explicit accumulator width."""
    return np.zeros(n, dtype=np.int32)


def positional(n):
    """Positional dtype is explicit too."""
    return np.zeros(n, np.int32)


def like(x):
    """*_like constructors inherit deliberately."""
    return np.zeros_like(x)
