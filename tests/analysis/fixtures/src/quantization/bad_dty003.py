"""Bad: per-call widening cast inside a kernel hot path."""
import numpy as np


class Layer:
    def __init__(self, weight):
        self.weight = weight

    def forward_int(self, x):
        """Widens the weight matrix on every call — BENCH_pr5's 8x bug."""
        return x.astype(np.int64) @ self.weight.astype(np.int64)
