"""Bad: array constructor inheriting float64 in the quantized path."""
import numpy as np


def accumulator(n):
    """Width left to the numpy default."""
    return np.zeros(n)
