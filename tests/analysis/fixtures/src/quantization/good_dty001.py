"""Good: narrowing casts clip to the representable range first."""
import numpy as np


def quantize(x):
    """Saturating cast, matching the hardware."""
    return np.clip(x, -128, 127).astype(np.int8)


def quantize_named(x):
    """Clipping through a guarded local also counts."""
    y = np.clip(x, -128, 127)
    return y.astype("int8")
