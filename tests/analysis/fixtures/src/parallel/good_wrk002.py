"""Good: multiprocessing inside a ``parallel`` package is the chokepoint."""
import multiprocessing


def spawn(target):
    """The transport package may use multiprocessing directly."""
    proc = multiprocessing.Process(target=target)
    proc.start()
    return proc
