"""Sync helpers; the blocking call sits one hop below the public API."""
import time


def prepare(payload):
    return _settle(payload)


def _settle(payload):
    time.sleep(0.01)
    return payload
