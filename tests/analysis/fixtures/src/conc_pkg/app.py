"""Async front-end whose coroutine crosses a module boundary into
blocking work (ASY001 must walk app.handle -> work.prepare ->
work._settle -> time.sleep)."""
import asyncio

from conc_pkg import work


class Frontend:
    async def handle(self, payload):
        return work.prepare(payload)

    async def run(self):
        while True:
            await asyncio.sleep(0.01)

    def start(self, loop):
        loop.create_task(self.run())
