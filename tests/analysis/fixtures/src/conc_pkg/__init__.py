"""Mini async+threaded package exercising cross-module call-graph
reachability: the coroutine in ``app`` reaches a blocking call two hops
away in ``work``, and the thread in ``workers`` races the main thread on
a partially locked counter."""
