"""Thread-side of the package: a drain thread with a stop event and a
join path (THR003-clean) that still races the main thread on a counter
locked on only one side (THR001)."""
import threading


class SharedState:
    def __init__(self):
        self.processed = 0
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread = None

    def start(self):
        self._thread = threading.Thread(target=self._drain, daemon=True)
        self._thread.start()

    def stop(self):
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=1.0)

    def note(self):
        self.processed += 1

    def _drain(self):
        while not self._stop_event.wait(0.01):
            with self._lock:
                self.processed += 1
