"""ASY002 good: asyncio lock for loop-side state; await outside the lock."""
import asyncio
import threading


class Cache:
    def __init__(self):
        self._alock = asyncio.Lock()
        self._tlock = threading.Lock()
        self.value = None

    async def refresh(self):
        async with self._alock:
            self.value = await _fetch()

    def snapshot(self):
        with self._tlock:
            return self.value


async def _fetch():
    await asyncio.sleep(0)
    return 1
