"""ASY003 bad: coroutine called as a bare statement, never awaited."""


async def flush():
    pass


def shutdown():
    flush()
