"""ASY002 bad: await while holding a threading lock."""
import asyncio
import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = None

    async def refresh(self):
        with self._lock:
            self.value = await _fetch()


async def _fetch():
    await asyncio.sleep(0)
    return 1
