"""ASY001 bad: blocking calls reachable from coroutines."""
import time


def _pace():
    time.sleep(0.1)


async def handler():
    _pace()


async def snapshot(path):
    with open(path) as f:
        return f.read()
