"""THR002 bad: two locks acquired in both orders — deadlock cycle."""
import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def transfer():
    with LOCK_A:
        with LOCK_B:
            pass


def audit():
    with LOCK_B:
        with LOCK_A:
            pass
