"""THR003 good: daemon loop waits on a stop event and is joined."""
import threading


class Pump:
    def __init__(self):
        self.interval = 0.05
        self._stop_event = threading.Event()
        self._thread = None

    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def stop(self):
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=1.0)

    def _run(self):
        while not self._stop_event.wait(self.interval):
            pass
