"""THR002 good: both paths acquire the locks in one global order."""
import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def transfer():
    with LOCK_A:
        with LOCK_B:
            pass


def audit():
    with LOCK_A:
        with LOCK_B:
            pass
