"""THR001 bad: sampler thread and main thread race on a counter."""
import threading


class Monitor:
    def __init__(self):
        self.samples = 0
        self._stop_event = threading.Event()
        self._thread = None

    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def stop(self):
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)

    def reset(self):
        self.samples = 0

    def _run(self):
        while not self._stop_event.wait(0.05):
            self.samples += 1
