"""THR001 good: every mutating site holds the same lock."""
import threading


class Monitor:
    def __init__(self):
        self.samples = 0
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread = None

    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def stop(self):
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)

    def reset(self):
        with self._lock:
            self.samples = 0

    def _run(self):
        while not self._stop_event.wait(0.05):
            with self._lock:
                self.samples += 1
