"""THR003 bad: daemon thread with no stop event and no join path."""
import threading


class Pump:
    def __init__(self):
        self.interval = 0.05

    def start(self):
        thread = threading.Thread(target=self._run, daemon=True)
        thread.start()

    def _run(self):
        while True:
            _tick(self.interval)


def _tick(interval):
    return interval
