"""ASY001 good: blocking work stays behind executor/asyncio boundaries."""
import asyncio
import time


def _pace():
    time.sleep(0.1)


async def handler():
    await asyncio.sleep(0.1)


async def offloaded():
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, _pace)
