"""ASY003 good: coroutines awaited, scheduled, or kept."""
import asyncio


async def flush():
    pass


async def shutdown():
    await flush()


def schedule(loop):
    loop.create_task(flush())


async def gathered():
    await asyncio.gather(flush(), flush())
