"""File-scoped suppression."""
# reprolint: disable-file=DET001 -- fixture: whole-file waiver
import numpy as np


def draw_a(n):
    """First legacy call."""
    return np.random.rand(n)


def draw_b(n):
    """Second legacy call, same waiver."""
    return np.random.randn(n)
