"""Line-scoped suppression with a written justification."""
import numpy as np


def draw(n):
    """Legacy call, explicitly waived on this one line."""
    return np.random.rand(n)  # reprolint: disable=DET001 -- fixture: waived for the suppression test
