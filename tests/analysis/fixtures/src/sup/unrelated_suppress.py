"""A suppression for a different rule does not silence this one."""
import numpy as np


def draw(n):
    """DET001 fires: the waiver below names another rule."""
    return np.random.rand(n)  # reprolint: disable=NUM001 -- fixture: wrong rule id on purpose
