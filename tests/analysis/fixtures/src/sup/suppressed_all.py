"""The ``all`` wildcard silences every rule on the line."""
import numpy as np


def draw(n):
    """Two rules fire here; both are waived."""
    rng = np.random.default_rng()  # reprolint: disable=all -- fixture: wildcard waiver
    return rng.uniform(size=n)
