"""Bad: ad-hoc multiprocessing outside the transport package."""
import multiprocessing


def fan_out(fn, items):
    """Bypass the audited executor with a bare Pool."""
    with multiprocessing.Pool(2) as pool:
        return pool.map(fn, items)
