"""Clock use outside kernel packages is allowed (orchestration)."""
import time


def now():
    """Wall-clock read in non-kernel code."""
    return time.time()
