"""Unit tests for the project call graph (`repro.analysis.callgraph`).

Covers the resolution features the concurrency rules lean on — aliased
imports, `self` method dispatch, attribute-type chains, async coloring,
generator detection, bounded cycle handling — plus the entry-point
registry and its union with WRK001's worker-entry modules (one shared
tuple, not two lists to keep in sync).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "src"


def graph_for(tmp_path, sources: dict[str, str], **kwargs):
    """Write a throwaway package and return (result, callgraph)."""
    root = tmp_path / "src"
    for relpath, body in sources.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body))
    result = analyze_paths([root], **kwargs)
    assert result.project is not None and result.project.callgraph is not None
    return result, result.project.callgraph


class TestResolution:
    def test_aliased_import_resolves_to_project_function(self, tmp_path):
        _, graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/util.py": "def helper():\n    return 1\n",
                "pkg/main.py": (
                    "from pkg import util as u\n"
                    "def go():\n"
                    "    return u.helper()\n"
                ),
            },
        )
        assert graph.edges["pkg.main.go"] == {"pkg.util.helper"}

    def test_from_import_function_alias(self, tmp_path):
        _, graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/util.py": "def helper():\n    return 1\n",
                "pkg/main.py": (
                    "from pkg.util import helper as h\n"
                    "def go():\n"
                    "    return h()\n"
                ),
            },
        )
        assert graph.edges["pkg.main.go"] == {"pkg.util.helper"}

    def test_self_method_call_resolves_through_class(self, tmp_path):
        _, graph = graph_for(
            tmp_path,
            {
                "mod.py": """
                class Engine:
                    def outer(self):
                        return self.inner()

                    def inner(self):
                        return 1
                """,
            },
        )
        assert graph.edges["mod.Engine.outer"] == {"mod.Engine.inner"}

    def test_self_method_through_project_base_class(self, tmp_path):
        _, graph = graph_for(
            tmp_path,
            {
                "mod.py": """
                class Base:
                    def shared(self):
                        return 1

                class Child(Base):
                    def use(self):
                        return self.shared()
                """,
            },
        )
        assert graph.edges["mod.Child.use"] == {"mod.Base.shared"}

    def test_attribute_type_chain(self, tmp_path):
        _, graph = graph_for(
            tmp_path,
            {
                "mod.py": """
                class Buffer:
                    def push(self):
                        return 1

                class Owner:
                    def __init__(self):
                        self.buffer = Buffer()

                    def feed(self):
                        self.buffer.push()
                """,
            },
        )
        assert graph.edges["mod.Owner.feed"] == {"mod.Buffer.push"}

    def test_module_global_singleton_chain(self, tmp_path):
        _, graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/buf.py": """
                class Buffer:
                    def push(self):
                        return 1

                BUFFER = Buffer()
                """,
                "pkg/use.py": (
                    "from pkg.buf import BUFFER\n"
                    "def feed():\n"
                    "    BUFFER.push()\n"
                ),
            },
        )
        assert graph.edges["pkg.use.feed"] == {"pkg.buf.Buffer.push"}

    def test_async_coloring_and_generator_detection(self, tmp_path):
        _, graph = graph_for(
            tmp_path,
            {
                "mod.py": """
                async def coro():
                    pass

                def gen():
                    yield 1

                def plain():
                    pass
                """,
            },
        )
        assert graph.functions["mod.coro"].is_async
        assert graph.functions["mod.gen"].is_generator
        assert not graph.functions["mod.plain"].is_async
        assert not graph.functions["mod.plain"].is_generator

    def test_cycle_terminates_and_stays_reachable(self, tmp_path):
        _, graph = graph_for(
            tmp_path,
            {
                "mod.py": """
                def ping():
                    return pong()

                def pong():
                    return ping()
                """,
            },
        )
        reach = graph.reachable("mod.ping")
        assert reach == {"mod.ping", "mod.pong"}

    def test_asy001_traverses_a_cycle_without_hanging(self, tmp_path):
        result, _ = graph_for(
            tmp_path,
            {
                "mod.py": """
                import time

                def ping(n):
                    return pong(n)

                def pong(n):
                    if n:
                        return ping(n - 1)
                    time.sleep(0.1)

                async def handler():
                    ping(3)
                """,
            },
        )
        hits = [f for f in result.findings if f.rule_id == "ASY001"]
        assert len(hits) == 1
        assert hits[0].scope == "handler"


class TestEntryPoints:
    def test_thread_entry_records_daemon_and_binding(self, tmp_path):
        _, graph = graph_for(
            tmp_path,
            {
                "mod.py": """
                import threading

                class Svc:
                    def start(self):
                        self._thread = threading.Thread(
                            target=self._run, daemon=True
                        )

                    def stop(self):
                        self._thread.join()

                    def _run(self):
                        pass
                """,
            },
        )
        entries = graph.thread_entries("mod")
        assert len(entries) == 1
        entry = entries[0]
        assert entry.target == "mod.Svc._run"
        assert entry.daemon
        assert entry.bound_to == "_thread"
        assert entry.owner == "mod.Svc"
        assert ("mod.Svc", "_thread") in graph.joined_attrs

    def test_task_spawn_registers_async_entry(self, tmp_path):
        _, graph = graph_for(
            tmp_path,
            {
                "mod.py": """
                import asyncio

                async def worker_loop():
                    pass

                def boot(loop):
                    loop.create_task(worker_loop())
                """,
            },
        )
        kinds = {(e.kind, e.target) for e in graph.entry_points}
        assert ("task", "mod.worker_loop") in kinds

    def test_worker_entries_shared_with_wrk001_registry(self):
        """One tuple drives both WRK001's closure and the call graph."""
        result = analyze_paths(
            [FIXTURES], worker_entry="wrk_pkg._campaign_worker"
        )
        graph = result.project.callgraph
        worker_targets = {
            e.target for e in graph.entry_points if e.kind == "worker"
        }
        assert "wrk_pkg._campaign_worker.run_task" in worker_targets
        # The serve-entry default is absent from the fixture tree, so it
        # contributes no worker entries.
        assert not any(t.startswith("svc_pkg") for t in worker_targets)

    def test_entry_points_module_extends_both_analyses(self):
        """--entry-points with a module moves WRK001 and the registry
        together (the union is shared, not duplicated)."""
        result = analyze_paths(
            [FIXTURES],
            worker_entry="wrk_pkg._campaign_worker",
            entry_points=["svc_pkg.server"],
        )
        # WRK001 side: the module's import closure is now checked.
        wrk_files = {
            Path(f.path).name
            for f in result.findings
            if f.rule_id == "WRK001"
        }
        assert "svc_state.py" in wrk_files
        # Call-graph side: its module-level functions are worker entries.
        worker_targets = {
            e.target
            for e in result.project.callgraph.entry_points
            if e.kind == "worker"
        }
        assert "svc_pkg.server.handle" in worker_targets

    def test_entry_points_function_becomes_custom_origin(self, tmp_path):
        """A function qualname entry adds a concurrent origin THR001
        counts: a mutation shared with main then races."""
        sources = {
            "mod.py": """
            class Tally:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1

                def reset(self):
                    self.count = 0

            TALLY = Tally()

            def cron_tick():
                TALLY.bump()
            """,
        }
        result, graph = graph_for(tmp_path, sources)
        assert not [f for f in result.findings if f.rule_id == "THR001"]
        result, graph = graph_for(
            tmp_path, sources, entry_points=["mod.cron_tick"]
        )
        assert ("custom", "mod.cron_tick") in {
            (e.kind, e.target) for e in graph.entry_points
        }
        hits = [f for f in result.findings if f.rule_id == "THR001"]
        assert len(hits) == 1 and "self.count" in hits[0].message


class TestDump:
    def test_dump_is_json_ready_and_versioned(self, tmp_path):
        import json

        _, graph = graph_for(
            tmp_path,
            {
                "mod.py": """
                import threading

                def spin():
                    pass

                threading.Thread(target=spin, daemon=True)
                """,
            },
        )
        payload = json.loads(json.dumps(graph.dump()))
        assert payload["schema_version"] == 1
        assert "mod.spin" in payload["functions"]
        assert payload["entry_points"][0]["target"] == "mod.spin"
        assert payload["entry_points"][0]["kind"] == "thread"


class TestServeInjection:
    def test_injected_blocking_call_in_submit_is_caught(self, tmp_path):
        """A time.sleep smuggled into the real serve submit coroutine is
        caught by ASY001 — the acceptance scenario for the rule."""
        server_src = (
            Path(__file__).resolve().parents[2]
            / "src" / "repro" / "serve" / "server.py"
        ).read_text()
        anchor = "        self._check_open()\n        if wait:"
        assert anchor in server_src, "submit() anchor moved; update test"
        injected = server_src.replace(
            anchor,
            "        import time\n"
            "        time.sleep(0.001)\n" + anchor,
        )
        bad = tmp_path / "server_injected.py"
        bad.write_text(injected)
        result = analyze_paths([bad])
        hits = [
            f
            for f in result.findings
            if f.rule_id == "ASY001" and f.scope == "LocalizationServer.submit"
        ]
        assert len(hits) == 1
        assert "time.sleep" in hits[0].message

    def test_unmodified_server_is_asy_clean(self, tmp_path):
        server = (
            Path(__file__).resolve().parents[2]
            / "src" / "repro" / "serve" / "server.py"
        )
        result = analyze_paths([server])
        assert not [
            f for f in result.findings if f.rule_id.startswith("ASY")
        ]
