"""Tests for the reprolint static-analysis framework."""
