"""Every rule fires on its bad fixture and stays silent on the good one.

The fixture tree under ``fixtures/src`` mirrors the repository layout:
package-scoped rules (DET003, NUM002, WRK*, DTY*) get fixture modules
whose dotted names carry the scoping segment (``physics``,
``quantization``, ``parallel``), and the WRK001 reachability graph is
anchored at the miniature ``wrk_pkg._campaign_worker`` entry.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "src"


@pytest.fixture(scope="module")
def result():
    """One analysis run over the whole fixture tree."""
    return analyze_paths([FIXTURES], worker_entry="wrk_pkg._campaign_worker")


def rules_in(result, filename):
    """Rule ids of active findings in the named fixture file."""
    return {
        f.rule_id
        for f in result.findings
        if Path(f.path).name == filename
    }


CASES = [
    ("ASY001", "bad_asy001.py", "good_asy001.py"),
    ("ASY002", "bad_asy002.py", "good_asy002.py"),
    ("ASY003", "bad_asy003.py", "good_asy003.py"),
    ("THR001", "bad_thr001.py", "good_thr001.py"),
    ("THR002", "bad_thr002.py", "good_thr002.py"),
    ("THR003", "bad_thr003.py", "good_thr003.py"),
    ("DET001", "bad_det001.py", "good_det001.py"),
    ("DET002", "bad_det002.py", "good_det002.py"),
    ("DET003", "bad_det003.py", "good_det003.py"),
    ("RNG001", "bad_rng001.py", "good_rng001.py"),
    ("RNG002", "bad_rng002.py", "good_rng002.py"),
    ("NUM001", "bad_num001.py", "good_num001.py"),
    ("NUM002", "bad_num002.py", "good_num002.py"),
    ("WRK002", "bad_wrk002.py", "good_wrk002.py"),
    ("DTY001", "bad_dty001.py", "good_dty001.py"),
    ("DTY002", "bad_dty002.py", "good_dty002.py"),
    ("DTY003", "bad_dty003.py", "good_dty003.py"),
    ("OBS001", "bad_obs001.py", "good_obs001.py"),
    ("OBS001", "bad_obs001_serve.py", "good_obs001_serve.py"),
]


@pytest.mark.parametrize("rule_id,bad,good", CASES)
def test_rule_fires_on_bad_fixture(result, rule_id, bad, good):
    assert rule_id in rules_in(result, bad), f"{rule_id} missed {bad}"


@pytest.mark.parametrize("rule_id,bad,good", CASES)
def test_rule_silent_on_good_fixture(result, rule_id, bad, good):
    assert rule_id not in rules_in(result, good), f"{rule_id} fired on {good}"


def test_wrk001_fires_on_worker_reachable_state(result):
    hits = [
        f
        for f in result.findings
        if f.rule_id == "WRK001" and Path(f.path).name == "state.py"
    ]
    paths = {Path(f.path).parent.name for f in hits}
    assert "wrk_pkg" in paths, "mutable state on the worker path missed"
    assert "offpath" not in paths, "unreachable module wrongly flagged"
    assert all("CACHE" in f.message for f in hits)


def test_wrk001_covers_service_entry_closure():
    """The serve entry's import closure joins the WRK001 graph."""
    result = analyze_paths(
        [FIXTURES],
        worker_entry="wrk_pkg._campaign_worker",
        service_entry="svc_pkg.server",
    )
    hits = {
        Path(f.path).name
        for f in result.findings
        if f.rule_id == "WRK001"
    }
    assert "svc_state.py" in hits, "service-reachable state missed"
    assert "state.py" in hits, "worker entry dropped from the union"


def test_wrk001_service_entry_absent_is_inert(result):
    """The default service entry is not in the fixtures: no svc findings."""
    hits = {
        Path(f.path).name
        for f in result.findings
        if f.rule_id == "WRK001"
    }
    assert "svc_state.py" not in hits


def test_wrk001_ignores_immutable_state(result):
    messages = [f.message for f in result.findings if f.rule_id == "WRK001"]
    assert not any("GOOD_TABLE" in m for m in messages)


def test_det003_allowed_outside_kernel_packages(result):
    assert "DET003" not in rules_in(result, "uses_clock.py")


def test_obs001_fires_once_per_call_site(result):
    hits = [
        f
        for f in result.findings
        if f.rule_id == "OBS001" and Path(f.path).name == "bad_obs001.py"
    ]
    assert len(hits) == 3, "expected span + inc in the for loop, observe in the while"


def test_rng002_flags_both_fallback_forms(result):
    hits = [
        f
        for f in result.findings
        if f.rule_id == "RNG002" and Path(f.path).name == "bad_rng002.py"
    ]
    assert len(hits) == 2, "expected both the `or` and `if None` forms"


def test_findings_carry_location_and_scope(result):
    f = next(
        f
        for f in result.findings
        if f.rule_id == "DET001" and Path(f.path).name == "bad_det001.py"
    )
    assert f.line > 0
    assert f.scope == "draw"
    assert f.severity == "error"


def test_rule_ids_are_unique():
    from repro.analysis.core import all_rules

    ids = [r.rule_id for r in all_rules()]
    assert len(ids) == len(set(ids))
    assert len(ids) >= 19


def test_asy001_crosses_module_boundaries(result):
    """The blocking call is two hops away in another module."""
    hits = [
        f
        for f in result.findings
        if f.rule_id == "ASY001" and Path(f.path).name == "app.py"
    ]
    assert len(hits) == 1
    assert "Frontend.handle -> prepare -> _settle -> time.sleep" in hits[0].message
    # The helpers themselves are sync: no findings inside work.py.
    assert "ASY001" not in rules_in(result, "work.py")


def test_thr001_partial_locking_is_flagged(result):
    """A lock held on only the thread side protects nothing."""
    hits = [
        f
        for f in result.findings
        if f.rule_id == "THR001" and Path(f.path).name == "workers.py"
    ]
    assert len(hits) == 1
    assert "self.processed" in hits[0].message
    assert "thread:" in hits[0].message


def test_thr003_accepts_stop_event_and_join(result):
    """The drain thread has both a stop event and a join path."""
    assert "THR003" not in rules_in(result, "workers.py")


def test_thr002_flags_both_acquisition_orders(result):
    hits = [
        f
        for f in result.findings
        if f.rule_id == "THR002" and Path(f.path).name == "bad_thr002.py"
    ]
    assert len(hits) == 2
    assert {f.scope for f in hits} == {"transfer", "audit"}


def test_asy001_message_names_the_blocking_chain(result):
    f = next(
        f
        for f in result.findings
        if f.rule_id == "ASY001" and Path(f.path).name == "bad_asy001.py"
        and f.scope == "handler"
    )
    assert "handler -> _pace -> time.sleep" in f.message
