"""Baseline round-trips, grandfathering, stale detection, CLI exit codes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures" / "src"
BAD_FILE = FIXTURES / "det" / "bad_det001.py"


@pytest.fixture(scope="module")
def findings():
    """Active findings from one bad fixture (DET001 twice: seed + rand)."""
    result = analyze_paths([BAD_FILE])
    assert result.findings
    return result.findings


def test_round_trip(tmp_path, findings):
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == Baseline.from_findings(findings).entries
    data = json.loads(path.read_text())
    assert data["version"] == 1
    assert sum(data["findings"].values()) == len(findings)


def test_missing_file_is_empty_baseline(tmp_path):
    assert not Baseline.load(tmp_path / "absent.json").entries


def test_unknown_version_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99, "findings": {}}')
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


def test_apply_baseline_grandfathers_exact_matches(findings):
    baseline = Baseline.from_findings(findings)
    new, grandfathered, stale = apply_baseline(findings, baseline)
    assert not new
    assert len(grandfathered) == len(findings)
    assert not stale


def test_apply_baseline_reports_stale_entries(findings):
    baseline = Baseline.from_findings(findings)
    extra = "XXX999|gone.py|<module>|this finding no longer exists"
    baseline.entries[extra] += 1
    new, grandfathered, stale = apply_baseline(findings, baseline)
    assert not new
    assert stale == [extra]


def test_apply_baseline_flags_findings_beyond_the_count(findings):
    baseline = Baseline.from_findings(findings[:-1])
    new, grandfathered, stale = apply_baseline(findings, baseline)
    assert len(new) == len(findings) - len(findings[:-1])


def test_cli_exit_codes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    bad = str(BAD_FILE)
    assert cli_main([bad]) == 1
    assert cli_main([bad, "--baseline", str(baseline), "--write-baseline"]) == 0
    assert cli_main([bad, "--baseline", str(baseline)]) == 0
    # A fixed (here: vanished) finding leaves the baseline entry stale.
    good = str(FIXTURES / "det" / "good_det001.py")
    assert cli_main([good, "--baseline", str(baseline)]) == 1
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "NUM002", "WRK001", "DTY002"):
        assert rule_id in out


def test_cli_json_format(capsys):
    assert cli_main([str(BAD_FILE), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    assert any(f["rule"] == "DET001" for f in payload["findings"])


def test_cli_select_and_disable(capsys):
    assert cli_main([str(BAD_FILE), "--select", "NUM001"]) == 0
    assert cli_main([str(BAD_FILE), "--disable", "DET001"]) == 0
    capsys.readouterr()
