"""Incremental (`--changed`) mode and the machine-readable JSON contract."""

from __future__ import annotations

import io
import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.cli import main as lint_main
from repro.analysis.report import SCHEMA_VERSION, render_json
from repro.analysis.runner import (
    AnalysisResult,
    changed_py_files,
    filter_to_changed,
)

FIXTURES = Path(__file__).parent / "fixtures" / "src"


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", *args],
        cwd=repo,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(repo),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


@pytest.fixture
def git_repo(tmp_path, monkeypatch):
    """A tiny repo: main has a clean file, HEAD adds a dirty one."""
    repo = tmp_path / "repo"
    repo.mkdir()
    _git(repo, "init", "-b", "main")
    clean = repo / "clean_mod.py"
    clean.write_text("def ok():\n    return 1\n")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-m", "seed")
    _git(repo, "checkout", "-b", "feature")
    dirty = repo / "dirty_mod.py"
    dirty.write_text(
        textwrap.dedent(
            """
            import time

            async def handler():
                time.sleep(0.1)
            """
        )
    )
    _git(repo, "add", "-A")
    _git(repo, "commit", "-m", "add dirty module")
    monkeypatch.chdir(repo)
    return repo


class TestChangedFileDiscovery:
    def test_changed_files_since_merge_base(self, git_repo):
        changed = changed_py_files("main")
        assert changed == {(git_repo / "dirty_mod.py").resolve()}

    def test_untracked_files_are_included(self, git_repo):
        extra = git_repo / "wip_mod.py"
        extra.write_text("def wip():\n    return 2\n")
        changed = changed_py_files("main")
        assert extra.resolve() in changed

    def test_outside_git_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert changed_py_files("main") is None

    def test_missing_base_ref_returns_none(self, git_repo):
        assert changed_py_files("no-such-branch") is None


class TestFilterToChanged:
    def test_projects_findings_onto_changed_set(self, git_repo):
        result = analyze_paths([git_repo])
        assert any(f.rule_id == "ASY001" for f in result.findings)
        filtered = filter_to_changed(
            result, {(git_repo / "clean_mod.py").resolve()}
        )
        assert filtered.findings == []
        # Whole-program stats survive the projection.
        assert filtered.files_scanned == result.files_scanned
        assert filtered.project is result.project


class TestChangedCli:
    def test_changed_reports_only_changed_files(self, git_repo, capsys):
        rc = lint_main([str(git_repo), "--changed"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "dirty_mod.py" in out
        assert "clean_mod.py" not in out

    def test_changed_exits_clean_when_nothing_changed(
        self, git_repo, capsys
    ):
        _git(git_repo, "checkout", "main")
        rc = lint_main([str(git_repo), "--changed"])
        assert rc == 0
        assert "nothing to report" in capsys.readouterr().out

    def test_changed_falls_back_to_full_run_outside_git(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        mod = tmp_path / "standalone.py"
        mod.write_text("def fine():\n    return 3\n")
        rc = lint_main([str(mod), "--changed"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "running a full lint" in captured.err
        assert "1 file(s) scanned" in captured.out


class TestJsonContract:
    def _payload(self, paths, **kwargs):
        result = analyze_paths(paths, **kwargs)
        stream = io.StringIO()
        render_json(result, result.findings, [], [], stream)
        return json.loads(stream.getvalue())

    def test_schema_version_present(self, tmp_path):
        mod = tmp_path / "empty_mod.py"
        mod.write_text("x = 1\n")
        payload = self._payload([mod])
        assert payload["schema_version"] == SCHEMA_VERSION == 1

    def test_findings_carry_rule_family(self):
        payload = self._payload(
            [FIXTURES], worker_entry="wrk_pkg._campaign_worker"
        )
        families = {f["rule_family"] for f in payload["findings"]}
        assert {"ASY", "THR", "DET", "WRK"} <= families
        for finding in payload["findings"]:
            assert finding["rule"].startswith(finding["rule_family"])
            assert finding["rule_family"].isalpha()

    def test_contract_keys_are_stable(self, tmp_path):
        mod = tmp_path / "contract_mod.py"
        mod.write_text("import time\nasync def f():\n    time.sleep(1)\n")
        payload = self._payload([mod])
        assert set(payload) == {
            "schema_version",
            "files_scanned",
            "findings",
            "baselined",
            "suppressed",
            "stale_baseline",
            "parse_errors",
        }
        (finding,) = payload["findings"]
        assert set(finding) == {
            "path",
            "line",
            "col",
            "rule",
            "rule_family",
            "severity",
            "message",
            "scope",
        }
