"""Tier-1 gate: the repository sources lint clean against the baseline.

Marked ``lint`` so fast loops can deselect it (``-m 'not lint'``); in
full runs it keeps ``src/`` at zero unbaselined findings — exactly what
``python -m repro.analysis src/`` and ``scripts/ci_checks.py`` enforce
in CI.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.baseline import Baseline, apply_baseline

REPO = Path(__file__).resolve().parents[2]


@pytest.mark.lint
def test_repository_sources_lint_clean():
    result = analyze_paths([REPO / "src"])
    baseline = Baseline.load(REPO / ".reprolint-baseline.json")
    new, _grandfathered, stale = apply_baseline(result.findings, baseline)
    assert not result.errors, f"parse errors: {result.errors}"
    report = "\n".join(
        f"{f.path}:{f.line}: {f.rule_id} {f.message}" for f in new
    )
    assert not new, f"unbaselined findings:\n{report}"
    assert not stale, f"stale baseline entries: {stale}"


@pytest.mark.lint
def test_checked_in_baseline_is_empty():
    baseline = Baseline.load(REPO / ".reprolint-baseline.json")
    assert not baseline.entries, (
        "the baseline is meant to stay empty: fix findings or add "
        "per-line justified suppressions instead of grandfathering"
    )


@pytest.mark.lint
def test_rule_registry_matches_docs_catalogue():
    """Every registered rule has a catalogue row and vice versa.

    Same assertion as the ``rules`` check in ``scripts/ci_checks.py``
    (which owns the regex); run here too so a plain ``pytest`` catches
    a rule/docs drift without the CI script."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "ci_checks", REPO / "scripts" / "ci_checks.py"
    )
    ci_checks = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(ci_checks)

    from repro.analysis.core import rule_ids

    doc = (REPO / "docs" / "static_analysis.md").read_text(encoding="utf-8")
    documented = set(ci_checks._CATALOGUE_ROW_RE.findall(doc))
    registered = set(rule_ids())
    assert registered - documented == set(), "rules missing a catalogue row"
    assert documented - registered == set(), "catalogue rows with no rule"
    assert ci_checks.check_rules_docs() == 0


@pytest.mark.lint
def test_every_inline_suppression_carries_a_justification():
    result = analyze_paths([REPO / "src"])
    bare = []
    for path in sorted({f.path for f in result.suppressed}):
        for lineno, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1
        ):
            if "reprolint: disable" in line and " -- " not in line:
                bare.append(f"{path}:{lineno}")
    assert not bare, f"suppressions without a justification: {bare}"
