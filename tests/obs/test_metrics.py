"""Metrics registry: counters, gauges, histogram bucket edges, merging."""

import math

import pytest

import repro.obs as obs
from repro.obs.metrics import REGISTRY, Histogram, is_peak_gauge


class TestGuard:
    def test_disabled_records_nothing(self):
        obs.inc("c")
        obs.set_gauge("g", 1.0)
        obs.observe("h", 5.0)
        snap = REGISTRY.dump()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_enabled_records(self):
        obs.enable()
        obs.inc("c")
        obs.inc("c", 4)
        obs.set_gauge("g", 2.5)
        obs.observe("h", 5.0)
        snap = REGISTRY.dump()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 2.5}
        assert snap["histograms"]["h"]["count"] == 1


class TestHistogramBuckets:
    def test_sample_on_bound_joins_that_bucket(self):
        h = Histogram(buckets=(1.0, 10.0, 100.0))
        h.observe(1.0)   # exactly on first bound -> bucket 0
        h.observe(10.0)  # exactly on second bound -> bucket 1
        assert h.counts == [1, 1, 0, 0]

    def test_below_first_and_above_last(self):
        h = Histogram(buckets=(1.0, 10.0))
        h.observe(0.0)
        h.observe(10.000001)
        h.observe(1e9)
        assert h.counts == [1, 0, 2]

    def test_total_and_count(self):
        h = Histogram(buckets=(5.0,))
        for v in (1.0, 2.0, 30.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(33.0)

    def test_round_trip_dict(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.5)
        h2 = Histogram.from_dict(h.to_dict())
        assert h2.buckets == h.buckets
        assert h2.counts == h.counts
        assert h2.total == h.total
        assert h2.count == h.count

    def test_round_trip_preserves_boundary_counts(self):
        # Samples exactly on bucket bounds must survive a JSONL round
        # trip in the same buckets (the merge protocol depends on it).
        import json

        h = Histogram(buckets=(1.0, 10.0, 100.0))
        for v in (1.0, 1.0, 10.0, 100.0, 100.5):
            h.observe(v)
        restored = Histogram.from_dict(json.loads(json.dumps(h.to_dict())))
        assert restored.counts == [2, 1, 1, 1]
        assert restored.counts == h.counts
        assert restored.percentile(0.5) == h.percentile(0.5)


class TestHistogramPercentile:
    def test_empty_histogram_returns_zero(self):
        assert Histogram(buckets=(1.0, 10.0)).percentile(0.95) == 0.0

    def test_returns_bucket_upper_edge(self):
        h = Histogram(buckets=(1.0, 10.0, 100.0))
        for v in (0.5,) * 90 + (50.0,) * 10:
            h.observe(v)
        assert h.percentile(0.5) == 1.0
        assert h.percentile(0.95) == 100.0

    def test_overflow_bucket_returns_inf(self):
        h = Histogram(buckets=(1.0,))
        h.observe(99.0)
        assert h.percentile(0.95) == math.inf

    def test_extreme_quantiles_clamp_to_valid_ranks(self):
        h = Histogram(buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        assert h.percentile(0.0) == 1.0   # rank floors at 1
        assert h.percentile(1.0) == 10.0  # rank caps at count


class TestMerge:
    def test_histogram_merge_adds_bucketwise(self):
        a = Histogram(buckets=(1.0, 10.0))
        b = Histogram(buckets=(1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(50.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3

    def test_histogram_merge_rejects_different_buckets(self):
        a = Histogram(buckets=(1.0,))
        b = Histogram(buckets=(2.0,))
        with pytest.raises(ValueError, match="buckets"):
            a.merge(b)

    def test_registry_merge_semantics(self):
        obs.enable()
        obs.inc("n", 2)
        obs.set_gauge("g", 1.0)
        obs.observe("h", 3.0)
        snap = {
            "counters": {"n": 3, "other": 1},
            "gauges": {"g": 9.0},
            "histograms": {
                "h": {"buckets": list(REGISTRY.histograms["h"].buckets),
                      "counts": REGISTRY.histograms["h"].counts[:],
                      "total": 3.0, "count": 1},
            },
        }
        REGISTRY.merge(snap)
        out = REGISTRY.dump()
        assert out["counters"] == {"n": 5, "other": 1}  # counters add
        assert out["gauges"] == {"g": 9.0}              # last writer wins
        assert out["histograms"]["h"]["count"] == 2     # histograms add


class TestPeakGaugeMerge:
    def test_is_peak_gauge_matches_final_segment_only(self):
        assert is_peak_gauge("res.rss_peak_mb")
        assert is_peak_gauge("rss_peak")
        assert not is_peak_gauge("res.rss_mb")
        assert not is_peak_gauge("peak.rss_mb")

    def test_peak_gauge_merges_with_max(self):
        obs.enable()
        obs.set_gauge("res.rss_peak_mb", 120.0)
        REGISTRY.merge({"gauges": {"res.rss_peak_mb": 80.0}})   # lower: kept
        assert REGISTRY.dump()["gauges"]["res.rss_peak_mb"] == 120.0
        REGISTRY.merge({"gauges": {"res.rss_peak_mb": 300.0}})  # higher: wins
        assert REGISTRY.dump()["gauges"]["res.rss_peak_mb"] == 300.0

    def test_peak_gauge_unknown_locally_takes_incoming(self):
        obs.enable()
        REGISTRY.merge({"gauges": {"res.rss_peak_mb": 55.0}})
        assert REGISTRY.dump()["gauges"]["res.rss_peak_mb"] == 55.0

    def test_plain_gauge_still_last_writer_wins(self):
        obs.enable()
        obs.set_gauge("res.rss_mb", 120.0)
        REGISTRY.merge({"gauges": {"res.rss_mb": 80.0}})
        assert REGISTRY.dump()["gauges"]["res.rss_mb"] == 80.0
