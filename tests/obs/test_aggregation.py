"""Cross-process telemetry: worker snapshots merge into one parent trace.

The contract under test: a 4-worker campaign yields the same instrumented
span counts as a serial run (every trial's spans arrive, none duplicated),
worker metrics fold into the parent registry, and — critically — enabling
telemetry changes no campaign output bit.
"""

from collections import Counter

import numpy as np
import pytest

import repro.obs as obs
from repro.obs.metrics import REGISTRY


#: Span names emitted per trial by the instrumented hot path, independent
#: of whether the trial ran in-process or in a worker.
PER_TRIAL_SPANS = (
    "trials.trial",
    "physics.transport",
    "response.digitize",
    "localize.localize_rings",
    "reconstruct.prepare_rings",
)


def _run(geometry, response, n_workers):
    from repro.experiments.trials import TrialConfig, run_trials

    return run_trials(
        geometry,
        response,
        seed=321,
        n_trials=8,
        config=TrialConfig(fluence_mev_cm2=0.5, polar_angle_deg=20.0),
        n_workers=n_workers,
    )


def _span_counts():
    return Counter(
        ev["name"] for ev in obs.events() if ev["type"] == "span"
    )


class TestMergedTelemetry:
    def test_4worker_span_counts_match_serial(self, geometry, response):
        obs.enable()
        serial_out = _run(geometry, response, n_workers=1)
        serial_counts = _span_counts()
        serial_metrics = REGISTRY.dump()

        obs.enable()  # reset buffers
        pooled_out = _run(geometry, response, n_workers=4)
        pooled_counts = _span_counts()
        pooled_metrics = REGISTRY.dump()

        np.testing.assert_array_equal(serial_out, pooled_out)
        for name in PER_TRIAL_SPANS:
            assert serial_counts[name] > 0
            assert pooled_counts[name] == serial_counts[name], name
        # Worker-side counters merged into the parent registry.
        assert (pooled_metrics["counters"]["transport.photons"]
                == serial_metrics["counters"]["transport.photons"])
        assert (pooled_metrics["counters"]["localize.calls"]
                == serial_metrics["counters"]["localize.calls"])
        # Executor-only telemetry exists only in the pooled run.
        assert "executor.chunks" not in serial_metrics["counters"]
        assert pooled_metrics["counters"]["executor.chunks"] > 0
        assert "executor.worker_busy_ms" in pooled_metrics["histograms"]

    def test_worker_spans_reparent_under_executor_map(self, geometry, response):
        obs.enable()
        _run(geometry, response, n_workers=4)
        events = obs.events()
        by_id = {ev["span_id"]: ev for ev in events if ev["type"] == "span"}
        map_ids = {
            ev["span_id"] for ev in events
            if ev["type"] == "span" and ev["name"] == "executor.map"
        }
        assert map_ids
        chunk_spans = [
            ev for ev in events
            if ev["type"] == "span" and ev["name"] == "executor.chunk"
        ]
        assert chunk_spans
        for ev in chunk_spans:
            assert ev["parent_id"] in map_ids
        # Every span resolves to a parent in the merged buffer or is a
        # parent-process root: one coherent tree, no orphans.
        for ev in events:
            if ev["type"] == "span" and ev["parent_id"] is not None:
                assert ev["parent_id"] in by_id


class TestBitIdentity:
    def test_traced_and_untraced_outputs_identical(self, geometry, response):
        untraced = _run(geometry, response, n_workers=4)
        obs.enable()
        traced = _run(geometry, response, n_workers=4)
        obs.disable()
        again_untraced = _run(geometry, response, n_workers=4)
        np.testing.assert_array_equal(untraced, traced)
        np.testing.assert_array_equal(untraced, again_untraced)

    def test_cache_tokens_unaffected_by_telemetry(self, geometry, response):
        from repro.experiments.trials import TrialConfig
        from repro.parallel import config_token

        config = TrialConfig(fluence_mev_cm2=1.0)
        t0 = config_token(1, 4, config, geometry, response, None)
        obs.enable()
        t1 = config_token(1, 4, config, geometry, response, None)
        obs.disable()
        assert t0 == t1


class TestCacheCounters:
    def test_hit_miss_corrupt_counters(self, tmp_path):
        from repro.parallel import StageCache

        cache = StageCache(tmp_path)
        obs.enable()
        assert cache.load("stage", "tok") is None          # miss
        cache.store("stage", "tok", {"x": 1})              # store
        assert cache.load("stage", "tok") == {"x": 1}      # hit
        cache.path_for("stage", "tok").write_bytes(b"not a pickle")
        assert cache.load("stage", "tok") is None          # corrupt
        counters = REGISTRY.dump()["counters"]
        assert counters["cache.miss"] == 1
        assert counters["cache.store"] == 1
        assert counters["cache.hit"] == 1
        assert counters["cache.corrupt"] == 1
