"""Cross-process telemetry: worker snapshots merge into one parent trace.

The contract under test: a 4-worker campaign yields the same instrumented
span counts as a serial run (every trial's spans arrive, none duplicated),
worker metrics fold into the parent registry, and — critically — enabling
telemetry changes no campaign output bit.
"""

from collections import Counter

import numpy as np
import pytest

import repro.obs as obs
from repro.obs.metrics import REGISTRY


#: Span names emitted per trial by the instrumented hot path, independent
#: of whether the trial ran in-process or in a worker.
PER_TRIAL_SPANS = (
    "trials.trial",
    "physics.transport",
    "response.digitize",
    "localize.localize_rings",
    "reconstruct.prepare_rings",
)


def _run(geometry, response, n_workers):
    from repro.experiments.trials import TrialConfig, run_trials

    return run_trials(
        geometry,
        response,
        seed=321,
        n_trials=8,
        config=TrialConfig(fluence_mev_cm2=0.5, polar_angle_deg=20.0),
        n_workers=n_workers,
    )


def _span_counts():
    return Counter(
        ev["name"] for ev in obs.events() if ev["type"] == "span"
    )


class TestMergedTelemetry:
    def test_4worker_span_counts_match_serial(self, geometry, response):
        obs.enable()
        serial_out = _run(geometry, response, n_workers=1)
        serial_counts = _span_counts()
        serial_metrics = REGISTRY.dump()

        obs.enable()  # reset buffers
        pooled_out = _run(geometry, response, n_workers=4)
        pooled_counts = _span_counts()
        pooled_metrics = REGISTRY.dump()

        np.testing.assert_array_equal(serial_out, pooled_out)
        for name in PER_TRIAL_SPANS:
            assert serial_counts[name] > 0
            assert pooled_counts[name] == serial_counts[name], name
        # Worker-side counters merged into the parent registry.
        assert (pooled_metrics["counters"]["transport.photons"]
                == serial_metrics["counters"]["transport.photons"])
        assert (pooled_metrics["counters"]["localize.calls"]
                == serial_metrics["counters"]["localize.calls"])
        # Executor-only telemetry exists only in the pooled run.
        assert "executor.chunks" not in serial_metrics["counters"]
        assert pooled_metrics["counters"]["executor.chunks"] > 0
        assert "executor.worker_busy_ms" in pooled_metrics["histograms"]

    def test_worker_spans_reparent_under_executor_map(self, geometry, response):
        obs.enable()
        _run(geometry, response, n_workers=4)
        events = obs.events()
        by_id = {ev["span_id"]: ev for ev in events if ev["type"] == "span"}
        map_ids = {
            ev["span_id"] for ev in events
            if ev["type"] == "span" and ev["name"] == "executor.map"
        }
        assert map_ids
        chunk_spans = [
            ev for ev in events
            if ev["type"] == "span" and ev["name"] == "executor.chunk"
        ]
        assert chunk_spans
        for ev in chunk_spans:
            assert ev["parent_id"] in map_ids
        # Every span resolves to a parent in the merged buffer or is a
        # parent-process root: one coherent tree, no orphans.
        for ev in events:
            if ev["type"] == "span" and ev["parent_id"] is not None:
                assert ev["parent_id"] in by_id


class TestBitIdentity:
    def test_traced_and_untraced_outputs_identical(self, geometry, response):
        untraced = _run(geometry, response, n_workers=4)
        obs.enable()
        traced = _run(geometry, response, n_workers=4)
        obs.disable()
        again_untraced = _run(geometry, response, n_workers=4)
        np.testing.assert_array_equal(untraced, traced)
        np.testing.assert_array_equal(untraced, again_untraced)

    def test_cache_tokens_unaffected_by_telemetry(self, geometry, response):
        from repro.experiments.trials import TrialConfig
        from repro.parallel import config_token

        config = TrialConfig(fluence_mev_cm2=1.0)
        t0 = config_token(1, 4, config, geometry, response, None)
        obs.enable()
        t1 = config_token(1, 4, config, geometry, response, None)
        obs.disable()
        assert t0 == t1


def _gauge_task(x):
    """Worker task recording a peak-style and a plain gauge."""
    obs.set_gauge("task.value_peak", float(x))
    obs.set_gauge("task.value", float(x))
    return x


class TestMultiWorkerGaugeMerge:
    def test_peak_gauge_takes_campaign_max_across_workers(self):
        # Regression: peak gauges used to merge last-writer-wins, so the
        # merged value depended on chunk arrival order.  With max-merge
        # the campaign-wide peak is deterministic regardless of timing.
        from repro.parallel.executor import CampaignExecutor

        obs.enable()
        ex = CampaignExecutor(n_workers=4)
        try:
            values = list(range(1, 33))
            assert ex.map(_gauge_task, values) == values
        finally:
            ex.close()
        gauges = REGISTRY.dump()["gauges"]
        assert gauges["task.value_peak"] == 32.0
        # The plain gauge keeps last-writer-wins: some worker's value.
        assert gauges["task.value"] in [float(v) for v in values]


class TestWorkerFlags:
    def test_flags_none_while_disabled(self):
        assert obs.worker_flags() is None

    def test_flags_mirror_live_subsystems(self):
        obs.enable()
        assert obs.worker_flags() == {
            "trace": True, "profile_hz": None, "resources_s": None,
        }
        obs.profile.start(hz=50)
        obs.resources.start(interval_s=0.5)
        try:
            flags = obs.worker_flags()
            assert flags["profile_hz"] == 50.0
            assert flags["resources_s"] == 0.5
        finally:
            obs.profile.stop()
            obs.resources.stop()

    def test_apply_flags_starts_and_stops_subsystems(self):
        obs.apply_worker_flags(
            {"trace": True, "profile_hz": 50.0, "resources_s": 0.5}
        )
        try:
            assert obs.is_enabled()
            assert obs.profile.is_running()
            assert obs.resources.MONITOR.running
        finally:
            obs.apply_worker_flags(None)
        assert not obs.is_enabled()
        assert not obs.profile.is_running()
        assert not obs.resources.MONITOR.running

    def test_apply_none_when_disabled_is_noop(self):
        obs.apply_worker_flags(None)
        assert not obs.is_enabled()


class TestCacheCounters:
    def test_hit_miss_corrupt_counters(self, tmp_path):
        from repro.parallel import StageCache

        cache = StageCache(tmp_path)
        obs.enable()
        assert cache.load("stage", "tok") is None          # miss
        cache.store("stage", "tok", {"x": 1})              # store
        assert cache.load("stage", "tok") == {"x": 1}      # hit
        cache.path_for("stage", "tok").write_bytes(b"not a pickle")
        assert cache.load("stage", "tok") is None          # corrupt
        counters = REGISTRY.dump()["counters"]
        assert counters["cache.miss"] == 1
        assert counters["cache.store"] == 1
        assert counters["cache.hit"] == 1
        assert counters["cache.corrupt"] == 1
