"""Telemetry tests mutate process-global state; always clean up."""

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def _telemetry_off_after_test():
    """Guarantee telemetry is disabled and empty after every test."""
    yield
    obs.disable()
