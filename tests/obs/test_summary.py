"""Per-stage summary: aggregation, %-of-parent, coverage, rendering."""

import pytest

from repro.obs.summary import coverage, render_table, summarize, summary_dict


def _span(name, span_id, parent_id, dur_ms, status="ok"):
    return {
        "type": "span", "name": name, "span_id": span_id,
        "parent_id": parent_id, "dur_ms": dur_ms, "pid": 1, "tid": 1,
        "status": status,
    }


@pytest.fixture
def tree():
    """root(100ms) -> work(60ms + 30ms), work -> leaf(45ms)."""
    return [
        _span("leaf", "1-4", "1-2", 45.0),
        _span("work", "1-2", "1-1", 60.0),
        _span("work", "1-3", "1-1", 30.0),
        _span("root", "1-1", None, 100.0),
    ]


class TestSummarize:
    def test_counts_and_totals(self, tree):
        by_name = {s.name: s for s in summarize(tree)}
        assert by_name["work"].count == 2
        assert by_name["work"].total_ms == pytest.approx(90.0)
        assert by_name["work"].mean_ms == pytest.approx(45.0)

    def test_pct_of_parent(self, tree):
        by_name = {s.name: s for s in summarize(tree)}
        assert by_name["work"].parent == "root"
        assert by_name["work"].pct_of_parent == pytest.approx(90.0)
        assert by_name["leaf"].pct_of_parent == pytest.approx(50.0)
        assert by_name["root"].pct_of_parent == pytest.approx(100.0)

    def test_sorted_by_total_desc(self, tree):
        names = [s.name for s in summarize(tree)]
        assert names == ["root", "work", "leaf"]

    def test_p95_nearest_rank(self):
        events = [
            _span("s", f"1-{i}", None, float(i)) for i in range(1, 101)
        ]
        by_name = {s.name: s for s in summarize(events)}
        assert by_name["s"].p95_ms == pytest.approx(95.0)

    def test_error_spans_counted(self):
        events = [_span("s", "1-1", None, 1.0, status="error")]
        (st,) = summarize(events)
        assert st.errors == 1


class TestCoverage:
    def test_full_coverage(self, tree):
        assert coverage(tree) == pytest.approx(0.9)

    def test_no_children(self):
        events = [_span("root", "1-1", None, 50.0)]
        assert coverage(events) == 0.0

    def test_empty(self):
        assert coverage([]) == 0.0


class TestRender:
    def test_table_mentions_stages_and_metrics(self, tree):
        events = tree + [
            {"type": "counter", "name": "cache.hit", "value": 7},
            {"type": "histogram", "name": "h", "buckets": [1.0],
             "counts": [1, 0], "total": 0.5, "count": 1},
        ]
        text = render_table(events)
        assert "work" in text
        assert "cache.hit" in text
        assert "coverage" in text

    def test_summary_dict_shape(self, tree):
        d = summary_dict(tree)
        assert d["stages"]["work"]["count"] == 2
        assert d["coverage"] == pytest.approx(0.9)
