"""Resource monitor: procfs readings, gauge recording, lifecycle."""

import time

import repro.obs as obs
from repro.obs import resources
from repro.obs.metrics import REGISTRY, is_peak_gauge
from repro.obs.resources import (
    ResourceMonitor,
    cpu_seconds,
    gc_collections,
    read_rss_mb,
    shm_segment_count,
)


class TestReadings:
    def test_rss_positive_on_linux(self):
        rss_mb, peak_mb = read_rss_mb()
        assert rss_mb > 0
        assert peak_mb >= rss_mb

    def test_cpu_seconds_monotonic(self):
        a = cpu_seconds()
        sum(i * i for i in range(200_000))
        assert cpu_seconds() >= a

    def test_gc_collections_nonnegative(self):
        assert gc_collections() >= 0

    def test_shm_segment_count_zero_without_segments(self):
        assert shm_segment_count() == 0


class TestSampleNow:
    def test_records_all_gauges_when_enabled(self):
        obs.enable()
        readings = ResourceMonitor().sample_now()
        gauges = REGISTRY.dump()["gauges"]
        assert set(readings) == {
            "res.rss_mb", "res.rss_peak_mb", "res.cpu_s",
            "res.gc_collections", "res.shm_segments",
        }
        for name, value in readings.items():
            assert gauges[name] == value

    def test_peak_gauge_name_is_peak_styled(self):
        assert is_peak_gauge("res.rss_peak_mb")
        assert not is_peak_gauge("res.rss_mb")
        assert not is_peak_gauge("peak.rss_mb")  # only the final segment

    def test_records_nothing_when_disabled(self):
        ResourceMonitor().sample_now()
        assert REGISTRY.dump()["gauges"] == {}


class TestLifecycle:
    def test_start_samples_periodically_and_stop_joins(self):
        obs.enable()
        monitor = ResourceMonitor()
        monitor.start(interval_s=0.02)
        assert monitor.running
        time.sleep(0.1)
        monitor.stop()
        assert not monitor.running
        assert REGISTRY.dump()["gauges"]["res.rss_mb"] > 0

    def test_stop_records_final_sample(self):
        obs.enable()
        monitor = ResourceMonitor()
        monitor.start(interval_s=60.0)  # no tick will fire on its own
        monitor.stop()
        assert "res.cpu_s" in REGISTRY.dump()["gauges"]

    def test_stop_without_start_is_noop(self):
        ResourceMonitor().stop()

    def test_module_level_start_stop(self):
        obs.enable()
        resources.start(interval_s=0.05)
        assert resources.is_running()
        resources.stop()
        assert not resources.is_running()
