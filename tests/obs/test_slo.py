"""SLO evaluation: percentiles, rule families, missing-input semantics."""

import json
import math

import pytest

from repro.obs.metrics import Histogram
from repro.obs.slo import (
    default_spec,
    evaluate,
    exact_percentile,
    load_spec,
    render_report,
    stage_durations,
)


def _span(name, dur_ms):
    return {"type": "span", "name": name, "span_id": "1-1",
            "parent_id": None, "dur_ms": dur_ms, "pid": 1, "tid": 1,
            "status": "ok"}


class TestExactPercentile:
    def test_empty_returns_zero(self):
        assert exact_percentile([], 0.95) == 0.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert exact_percentile(values, 0.95) == 95.0
        assert exact_percentile(values, 0.5) == 50.0
        assert exact_percentile(values, 1.0) == 100.0

    def test_single_sample(self):
        assert exact_percentile([7.0], 0.99) == 7.0


class TestStageRules:
    def test_passing_stage_rule(self):
        events = [_span("s", d) for d in (1.0, 2.0, 3.0)]
        report = evaluate({"stages": {"s": {"p95_ms": 10.0}}}, events=events)
        assert report["passed"]
        (check,) = report["checks"]
        assert check["kind"] == "stage"
        assert check["value"] == 3.0
        assert check["margin"] == pytest.approx(0.7)

    def test_breaching_stage_rule(self):
        events = [_span("s", 100.0)]
        report = evaluate({"stages": {"s": {"p95_ms": 10.0}}}, events=events)
        assert not report["passed"]
        assert report["n_failed"] == 1
        assert report["checks"][0]["margin"] == pytest.approx(-9.0)

    def test_missing_stage_fails_with_none_value(self):
        report = evaluate({"stages": {"ghost": {"p99_ms": 5.0}}}, events=[])
        (check,) = report["checks"]
        assert not check["passed"]
        assert check["value"] is None

    def test_unknown_latency_key_raises(self):
        with pytest.raises(ValueError, match="unknown latency rule"):
            evaluate({"stages": {"s": {"mean_ms": 1.0}}}, events=[])


class TestHistogramRules:
    def _metrics(self, values):
        h = Histogram(buckets=(1.0, 10.0, 100.0))
        for v in values:
            h.observe(v)
        return {"histograms": {"h": h.to_dict()}}

    def test_histogram_percentile_upper_bound(self):
        report = evaluate(
            {"histograms": {"h": {"p95_ms": 10.0}}},
            metrics=self._metrics([0.5] * 90 + [5.0] * 10),
        )
        (check,) = report["checks"]
        assert check["passed"]
        assert check["value"] == 10.0  # bucket upper edge, conservative

    def test_overflow_bucket_fails(self):
        report = evaluate(
            {"histograms": {"h": {"p95_ms": 1000.0}}},
            metrics=self._metrics([5000.0]),
        )
        (check,) = report["checks"]
        assert not check["passed"]
        assert check["value"] == math.inf

    def test_empty_histogram_fails_as_missing(self):
        report = evaluate(
            {"histograms": {"h": {"p95_ms": 10.0}}}, metrics=self._metrics([])
        )
        assert report["checks"][0]["value"] is None
        assert not report["passed"]


class TestOpsRules:
    def test_throughput_floor(self):
        spec = {"ops": {"k": {"min_rows_per_s": 100.0}}}
        assert evaluate(spec, perf={"k": 250.0})["passed"]
        report = evaluate(spec, perf={"k": 50.0})
        assert not report["passed"]
        assert report["checks"][0]["margin"] == pytest.approx(-0.5)

    def test_missing_op_fails(self):
        report = evaluate({"ops": {"k": {"min_rows_per_s": 1.0}}}, perf={})
        assert not report["passed"]
        assert report["checks"][0]["value"] is None

    def test_unknown_ops_rule_raises(self):
        with pytest.raises(ValueError, match="unknown ops rule"):
            evaluate({"ops": {"k": {"max_rows_per_s": 1.0}}}, perf={})


class TestServeRules:
    def _load_report(self, **overrides):
        report = {"p50_ms": 20.0, "p95_ms": 60.0, "p99_ms": 90.0,
                  "req_per_s": 40.0}
        report.update(overrides)
        return report

    def test_latency_ceilings_and_rate_floor_pass(self):
        spec = {"serve": {"load": {"p50_ms": 50.0, "p99_ms": 100.0,
                                   "min_req_per_s": 10.0}}}
        report = evaluate(spec, serve={"load": self._load_report()})
        assert report["passed"]
        kinds = {c["metric"]: c for c in report["checks"]}
        assert kinds["p50_ms"]["value"] == 20.0
        assert kinds["min_req_per_s"]["margin"] == pytest.approx(3.0)
        assert all(c["kind"] == "serve" for c in report["checks"])

    def test_latency_breach_fails(self):
        spec = {"serve": {"load": {"p99_ms": 50.0}}}
        report = evaluate(spec, serve={"load": self._load_report()})
        assert not report["passed"]
        assert report["checks"][0]["margin"] == pytest.approx(-0.8)

    def test_rate_floor_breach_fails(self):
        spec = {"serve": {"load": {"min_req_per_s": 100.0}}}
        report = evaluate(
            spec, serve={"load": self._load_report(req_per_s=25.0)}
        )
        assert not report["passed"]
        assert report["checks"][0]["margin"] == pytest.approx(-0.75)

    def test_missing_load_run_fails_with_none(self):
        spec = {"serve": {"load": {"p99_ms": 50.0,
                                   "min_req_per_s": 1.0}}}
        report = evaluate(spec, serve={})
        assert not report["passed"]
        assert all(c["value"] is None for c in report["checks"])

    def test_unknown_serve_rule_raises(self):
        with pytest.raises(ValueError, match="unknown serve rule"):
            evaluate({"serve": {"load": {"mean_ms": 1.0}}}, serve={})

    def test_multiple_named_runs(self):
        spec = {"serve": {"c1": {"p99_ms": 100.0},
                          "c8": {"p99_ms": 400.0}}}
        report = evaluate(spec, serve={
            "c1": self._load_report(p99_ms=90.0),
            "c8": self._load_report(p99_ms=350.0),
        })
        assert report["passed"]
        assert {c["name"] for c in report["checks"]} == {"c1", "c8"}


class TestSpecIO:
    def test_load_spec_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(default_spec()))
        assert load_spec(path) == default_spec()

    def test_load_spec_rejects_unknown_section(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"latencies": {}}))
        with pytest.raises(ValueError, match="unknown SLO spec section"):
            load_spec(path)

    def test_default_spec_names_executor_stages(self):
        spec = default_spec()
        assert "executor.chunk" in spec["stages"]
        assert "executor.worker_busy_ms" in spec["histograms"]
        assert spec["ops"]

    def test_default_spec_covers_serve(self):
        rules = default_spec()["serve"]["load"]
        assert rules["min_req_per_s"] > 0
        assert rules["p99_ms"] > rules["p50_ms"]


class TestRenderReport:
    def test_render_marks_breaches(self):
        report = evaluate(
            {"stages": {"s": {"p95_ms": 1.0}}}, events=[_span("s", 5.0)]
        )
        text = render_report(report)
        assert text.startswith("SLO report: FAIL (1 breached)")
        assert "BREACH" in text

    def test_render_pass_and_missing(self):
        report = evaluate(
            {"stages": {"s": {"p95_ms": 10.0}, "ghost": {"p95_ms": 1.0}}},
            events=[_span("s", 5.0)],
        )
        text = render_report(report)
        assert "ok" in text
        assert "missing" in text
