"""Span tracer: nesting, exception safety, no-op fast path, JSONL I/O."""

import os
import threading

import pytest

import repro.obs as obs
from repro.obs import trace


class TestDisabled:
    def test_span_is_shared_noop(self):
        assert not obs.is_enabled()
        s1 = trace.span("a")
        s2 = trace.span("b")
        assert s1 is s2  # one shared object, no allocation per call

    def test_noop_span_records_nothing(self):
        with trace.span("a"):
            pass
        assert obs.events() == []

    def test_decorated_function_passthrough(self):
        @trace.traced("x")
        def f(v):
            return v + 1

        assert f(1) == 2
        assert obs.events() == []


class TestNesting:
    def test_parent_child_linkage(self):
        obs.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        inner, outer = obs.events()
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_sibling_spans_share_parent(self):
        obs.enable()
        with trace.span("outer"):
            with trace.span("a"):
                pass
            with trace.span("b"):
                pass
        a, b, outer = obs.events()
        assert a["parent_id"] == outer["span_id"]
        assert b["parent_id"] == outer["span_id"]

    def test_span_ids_embed_pid_and_are_unique(self):
        obs.enable()
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
        ids = [ev["span_id"] for ev in obs.events()]
        assert len(set(ids)) == 2
        assert all(i.startswith(f"{os.getpid()}-") for i in ids)

    def test_durations_are_positive_and_nested_leq_parent(self):
        obs.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                sum(range(1000))
        inner, outer = obs.events()
        assert 0 <= inner["dur_ms"] <= outer["dur_ms"]

    def test_thread_stacks_independent(self):
        obs.enable()
        seen = []

        def worker():
            with trace.span("thread-root"):
                pass
            seen.append(True)

        with trace.span("main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        roots = [ev for ev in obs.events() if ev["parent_id"] is None]
        # The thread's span must NOT parent under main's open span.
        assert {ev["name"] for ev in roots} == {"thread-root", "main-root"}


class TestExceptionSafety:
    def test_exception_marks_status_and_unwinds(self):
        obs.enable()
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("x")
        (ev,) = obs.events()
        assert ev["status"] == "error"
        # The stack fully unwound: a new span is a root again.
        with trace.span("after"):
            pass
        assert obs.events()[-1]["parent_id"] is None

    def test_leaked_inner_span_does_not_corrupt_stack(self):
        obs.enable()
        outer = trace.span("outer")
        outer.__enter__()
        inner = trace.span("inner")
        inner.__enter__()  # never exited
        outer.__exit__(None, None, None)
        with trace.span("next"):
            pass
        assert obs.events()[-1]["parent_id"] is None


class TestDecorator:
    def test_traced_records_span(self):
        obs.enable()

        @trace.traced("math.op")
        def f(v):
            return v * 2

        assert f(21) == 42
        (ev,) = obs.events()
        assert ev["name"] == "math.op"


class TestTimedSpan:
    def test_measures_even_when_disabled(self):
        assert not obs.is_enabled()
        with trace.timed_span("t") as sp:
            sum(range(10000))
        assert sp.duration_ms > 0
        assert obs.events() == []

    def test_records_when_enabled(self):
        obs.enable()
        with trace.timed_span("t"):
            pass
        assert obs.events()[0]["name"] == "t"


class TestJsonlRoundTrip:
    def test_flush_and_load(self, tmp_path):
        obs.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        obs.inc("cache.hit", 3)
        path = tmp_path / "trace.jsonl"
        n = obs.flush_jsonl(path, extra_events=obs.metric_events())
        assert n == 3
        loaded = obs.load_jsonl(path)
        spans = [ev for ev in loaded if ev["type"] == "span"]
        counters = [ev for ev in loaded if ev["type"] == "counter"]
        assert [ev["name"] for ev in spans] == ["inner", "outer"]
        assert spans[0]["parent_id"] == spans[1]["span_id"]
        assert counters == [{"type": "counter", "name": "cache.hit", "value": 3}]

    def test_loaded_events_match_buffer(self, tmp_path):
        obs.enable()
        with trace.span("a"):
            pass
        buffered = obs.events()
        path = tmp_path / "t.jsonl"
        obs.flush_jsonl(path)
        assert obs.load_jsonl(path) == buffered


class TestStageTimerDelegation:
    def test_stage_timer_emits_platform_spans(self):
        from repro.platforms.timing import StageTimer

        obs.enable()
        timer = StageTimer()
        with timer.stage("Reconstruction"):
            pass
        assert timer.mean_ms("Reconstruction") >= 0
        (ev,) = obs.events()
        assert ev["name"] == "platform.Reconstruction"

    def test_stage_timer_still_works_disabled(self):
        from repro.platforms.timing import StageTimer

        timer = StageTimer()
        with timer.stage("X"):
            sum(range(1000))
        assert timer.mean_ms("X") > 0
        assert obs.events() == []
