"""Sampling profiler: buffer algebra, span attribution, live sampling.

The live-sampling tests run the profiler against a thread that burns CPU
inside a known span, so they assert structure (samples exist, the span
is attributed, gating works) rather than exact counts — wall-clock
sampling is inherently noisy.
"""

import time

import pytest

import repro.obs as obs
from repro.obs import profile
from repro.obs.profile import (
    NO_SPAN,
    ProfileBuffer,
    SamplingProfiler,
    function_stats,
    merged_profile,
    render_table,
    write_folded,
)


def _burn(seconds: float) -> None:
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < seconds:
        sum(i * i for i in range(1000))


class TestProfileBuffer:
    def test_add_attributes_self_to_leaf_and_total_to_all(self):
        buf = ProfileBuffer()
        buf.add("a:f;b:g", ("outer", "inner"), 10.0)
        snap = buf.to_dict()
        assert snap["samples"] == 1
        assert snap["folded"] == {"a:f;b:g": 1}
        assert snap["span_self_ms"] == {"inner": 10.0}
        assert snap["span_total_ms"] == {"outer": 10.0, "inner": 10.0}

    def test_add_without_spans_charges_no_span(self):
        buf = ProfileBuffer()
        buf.add("a:f", (), 5.0)
        snap = buf.to_dict()
        assert snap["span_self_ms"] == {NO_SPAN: 5.0}
        assert snap["span_total_ms"] == {NO_SPAN: 5.0}

    def test_recursive_span_counted_once_in_total(self):
        buf = ProfileBuffer()
        buf.add("a:f", ("loop", "loop"), 4.0)
        assert buf.to_dict()["span_total_ms"] == {"loop": 4.0}

    def test_merge_adds_counts_times_and_pids(self):
        a, b = ProfileBuffer(), ProfileBuffer()
        a.add("x:f", ("s",), 1.0)
        b.add("x:f", ("s",), 2.0)
        b.add("y:g", ("t",), 3.0)
        b.add_duration(0.5)
        snap_b = b.to_dict()
        snap_b["pids"] = [999]
        a.merge(snap_b)
        out = a.to_dict()
        assert out["samples"] == 3
        assert out["folded"] == {"x:f": 2, "y:g": 1}
        assert out["span_self_ms"]["s"] == pytest.approx(3.0)
        assert out["duration_s"] == pytest.approx(0.5)
        assert 999 in out["pids"]

    def test_drain_returns_none_when_empty_and_clears(self):
        buf = ProfileBuffer()
        assert buf.drain() is None
        buf.add("x:f", (), 1.0)
        snap = buf.drain()
        assert snap["samples"] == 1
        assert buf.drain() is None


class TestFunctionStats:
    def test_self_is_leaf_total_is_membership(self):
        folded = {"a:f;b:g": 3, "a:f": 2, "a:f;c:h;b:g": 1}
        rows = {name: (s, t) for name, s, t in function_stats(folded)}
        assert rows["b:g"] == (4, 4)
        assert rows["a:f"] == (2, 6)
        assert rows["c:h"] == (0, 1)

    def test_sorted_by_self_descending(self):
        folded = {"a:f;b:g": 5, "c:h": 1}
        names = [name for name, _s, _t in function_stats(folded)]
        assert names[0] == "b:g"


class TestLiveSampling:
    def test_samples_attributed_to_open_span(self):
        obs.enable()
        profiler = SamplingProfiler()
        profiler.start(hz=500)
        try:
            with obs.span("proftest.busy"):
                _burn(0.15)
        finally:
            profiler.stop()
        snap = profiler.buffer.to_dict()
        assert snap["samples"] > 0
        assert "proftest.busy" in snap["span_self_ms"]
        assert snap["folded"]

    def test_span_gating_skips_spanless_threads(self):
        obs.enable()
        profiler = SamplingProfiler()
        profiler.start(hz=500, require_span=True)
        try:
            _burn(0.1)  # busy, but no span open on this thread
        finally:
            profiler.stop()
        assert profiler.buffer.to_dict()["samples"] == 0

    def test_require_span_false_records_no_span_samples(self):
        obs.enable()
        profiler = SamplingProfiler()
        profiler.start(hz=500, require_span=False)
        try:
            _burn(0.15)
        finally:
            profiler.stop()
        snap = profiler.buffer.to_dict()
        assert snap["samples"] > 0
        assert NO_SPAN in snap["span_self_ms"]

    def test_start_twice_is_noop_and_stop_idempotent(self):
        profiler = SamplingProfiler()
        profiler.start(hz=100)
        profiler.start(hz=9999)
        assert profiler.hz == 100
        profiler.stop()
        profiler.stop()
        assert not profiler.running


class TestEventsAndRendering:
    def _events_with_profile(self):
        return [
            {"type": "span", "name": "s", "span_id": "1-1",
             "parent_id": None, "dur_ms": 5.0, "pid": 1, "tid": 1,
             "status": "ok"},
            {"type": "profile", "samples": 2, "duration_s": 0.02,
             "pids": [1], "folded": {"m:f;m:g": 2},
             "span_self_ms": {"s": 20.0}, "span_total_ms": {"s": 20.0}},
            {"type": "profile", "samples": 1, "duration_s": 0.01,
             "pids": [2], "folded": {"m:f": 1},
             "span_self_ms": {"s": 10.0}, "span_total_ms": {"s": 10.0}},
        ]

    def test_merged_profile_combines_events(self):
        snap = merged_profile(self._events_with_profile())
        assert snap["samples"] == 3
        assert snap["pids"] == [1, 2]
        assert snap["folded"] == {"m:f;m:g": 2, "m:f": 1}
        assert snap["span_self_ms"]["s"] == pytest.approx(30.0)

    def test_merged_profile_none_without_profile_events(self):
        assert merged_profile([{"type": "span", "name": "s"}]) is None

    def test_render_table_mentions_spans_and_functions(self):
        text = render_table(self._events_with_profile(), top=5)
        assert "3 samples" in text
        assert "s" in text
        assert "m:g" in text

    def test_render_table_without_profile(self):
        assert "no profile events" in render_table([])

    def test_write_folded_emits_stack_count_lines(self, tmp_path):
        path = tmp_path / "folded.txt"
        n = write_folded(self._events_with_profile(), path)
        assert n == 2
        lines = path.read_text().splitlines()
        assert "m:f;m:g 2" in lines
        assert "m:f 1" in lines

    def test_profile_events_round_trip_jsonl(self, tmp_path):
        obs.enable()
        profile.PROFILER.buffer.add("m:f", ("s",), 7.0)
        path = tmp_path / "trace.jsonl"
        obs.flush_jsonl(path, extra_events=profile.profile_events())
        events = obs.load_jsonl(path)
        snap = merged_profile(events)
        assert snap["samples"] == 1
        assert snap["span_self_ms"] == {"s": 7.0}
