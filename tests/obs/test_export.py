"""Exporters: Prometheus text exposition and the JSONL metrics stream."""

import json
import time

import pytest

import repro.obs as obs
from repro.obs.export import (
    MetricsStream,
    load_stream,
    render_prometheus,
    sanitize_metric_name,
    unique_metric_names,
)


class TestSanitize:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_metric_name("cache.hit") == "cache_hit"
        assert sanitize_metric_name("a-b/c") == "a_b_c"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_colliding_names_get_deterministic_suffixes(self):
        keys = [("counters", "cache.hit"), ("counters", "cache/hit"),
                ("counters", "cache_hit_2")]
        names = unique_metric_names(keys)
        assert names[("counters", "cache.hit")] == "cache_hit"
        assert names[("counters", "cache/hit")] == "cache_hit_2"
        # The suffixed name itself re-collides and is re-suffixed.
        assert names[("counters", "cache_hit_2")] == "cache_hit_2_2"
        assert len(set(names.values())) == 3

    def test_same_name_in_different_sections_stays_unique(self):
        names = unique_metric_names([("counters", "x"), ("gauges", "x")])
        assert sorted(names.values()) == ["x", "x_2"]


class TestRenderPrometheus:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus({"counters": {}, "gauges": {},
                                  "histograms": {}}) == ""

    def test_counter_and_gauge_lines(self):
        text = render_prometheus({
            "counters": {"cache.hit": 3},
            "gauges": {"res.rss_mb": 12.5},
            "histograms": {},
        })
        assert "# TYPE cache_hit counter" in text
        assert "cache_hit 3" in text
        assert "# TYPE res_rss_mb gauge" in text
        assert "res_rss_mb 12.5" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_prometheus({
            "counters": {}, "gauges": {},
            "histograms": {
                "lat.ms": {"buckets": [1.0, 10.0], "counts": [2, 1, 1],
                           "total": 25.0, "count": 4},
            },
        })
        assert '# TYPE lat_ms histogram' in text
        assert 'lat_ms_bucket{le="1"} 2' in text
        assert 'lat_ms_bucket{le="10"} 3' in text       # cumulative
        assert 'lat_ms_bucket{le="+Inf"} 4' in text
        assert "lat_ms_sum 25" in text
        assert "lat_ms_count 4" in text

    def test_defaults_to_live_registry(self):
        obs.enable()
        obs.inc("exports.test_counter", 7)
        assert "exports_test_counter 7" in render_prometheus()

    def test_colliding_registry_names_render_distinct_series(self):
        text = render_prometheus({
            "counters": {"cache.hit": 3, "cache/hit": 5},
            "gauges": {}, "histograms": {},
        })
        # One series each, no duplicate TYPE header or sample name.
        assert text.count("# TYPE cache_hit counter") == 1
        assert text.count("# TYPE cache_hit_2 counter") == 1
        assert "cache_hit 3" in text
        assert "cache_hit_2 5" in text


class TestMetricsStream:
    def test_stream_writes_snapshots_and_final_flush(self, tmp_path):
        obs.enable()
        path = tmp_path / "live.jsonl"
        stream = MetricsStream(path, interval_s=0.02)
        stream.start()
        obs.inc("stream.count")
        time.sleep(0.08)
        obs.inc("stream.count")
        stream.stop()
        lines = load_stream(path)
        assert len(lines) >= 2
        assert lines[-1]["counters"]["stream.count"] == 2
        # Snapshots are cumulative and sequence-stamped.
        assert [ln["seq"] for ln in lines] == list(range(len(lines)))
        assert all(ln["t_mono_s"] >= 0 for ln in lines)

    def test_stop_always_writes_closing_state(self, tmp_path):
        obs.enable()
        path = tmp_path / "live.jsonl"
        stream = MetricsStream(path, interval_s=60.0)  # no tick fires
        stream.start()
        obs.set_gauge("stream.g", 4.0)
        stream.stop()
        lines = load_stream(path)
        assert len(lines) == 1
        assert lines[0]["gauges"]["stream.g"] == 4.0

    def test_flush_once_before_start_is_noop(self, tmp_path):
        stream = MetricsStream(tmp_path / "x.jsonl")
        stream.flush_once()
        assert stream.lines_written == 0

    def test_stop_twice_is_safe(self, tmp_path):
        stream = MetricsStream(tmp_path / "x.jsonl", interval_s=60.0)
        stream.start()
        stream.stop()
        stream.stop()
        assert not stream.running

    def test_restart_resets_sequence(self, tmp_path):
        obs.enable()
        stream = MetricsStream(tmp_path / "x.jsonl", interval_s=60.0)
        stream.start()
        stream.flush_once()
        stream.stop()
        assert stream.lines_written == 2
        # A reused stream starts a fresh run: seq restarts at 0, the
        # file is truncated, and the final stop line is seq 0.
        stream.start()
        stream.stop()
        lines = load_stream(tmp_path / "x.jsonl")
        assert [ln["seq"] for ln in lines] == [0]

    def test_restart_synchronizes_with_straggler_flush(self, tmp_path):
        """Regression (reprolint THR001): start() swaps the file and
        resets the sequence under the flush lock, so a flush thread that
        outlived stop()'s bounded join can never interleave with the
        restart's reset.  The test poses as that straggler by holding
        the lock mid-flush: start() must block until it is released."""
        import threading

        obs.enable()
        stream = MetricsStream(tmp_path / "x.jsonl", interval_s=60.0)
        stream.start()
        stream.stop()
        restarted = threading.Event()

        def restart():
            stream.start()
            restarted.set()

        with stream._lock:  # straggler inside flush_once
            t = threading.Thread(target=restart)
            t.start()
            assert not restarted.wait(0.15), (
                "start() reset state without taking the flush lock"
            )
        t.join(timeout=2.0)
        assert restarted.is_set()
        stream.stop()
        assert [ln["seq"] for ln in load_stream(tmp_path / "x.jsonl")] == [0]


class TestLoadStream:
    def _write(self, path, lines, tail=""):
        payload = "".join(json.dumps(ln) + "\n" for ln in lines) + tail
        path.write_text(payload)

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        self._write(path, [{"seq": 0}, {"seq": 1}],
                    tail='{"seq": 2, "counters": {"a"')
        assert [ln["seq"] for ln in load_stream(path)] == [0, 1]

    def test_truncated_line_without_newline_midkey(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        self._write(path, [{"seq": 0}], tail="{")
        assert [ln["seq"] for ln in load_stream(path)] == [0]

    def test_interior_corruption_still_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"seq": 0}\nnot json at all\n{"seq": 2}\n')
        with pytest.raises(json.JSONDecodeError):
            load_stream(path)

    def test_clean_file_roundtrips(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        self._write(path, [{"seq": 0}, {"seq": 1}])
        assert load_stream(path) == [{"seq": 0}, {"seq": 1}]
