"""Tests for containment statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.containment import containment, containment_with_errorbars


class TestContainment:
    def test_order_statistic_semantics(self):
        errors = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0])
        # 68% of 10 -> ceil(6.8) = 7th smallest.
        assert containment(errors, 0.68) == 7.0
        assert containment(errors, 0.95) == 10.0

    def test_full_containment_is_max(self):
        errors = np.array([3.0, 1.0, 2.0])
        assert containment(errors, 1.0) == 3.0

    def test_single_trial(self):
        assert containment(np.array([5.0]), 0.68) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            containment(np.array([]), 0.68)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            containment(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            containment(np.array([1.0]), 1.5)

    def test_unsorted_input(self):
        errors = np.array([9.0, 1.0, 5.0, 3.0, 7.0])
        assert containment(errors, 0.6) == 5.0

    @given(
        st.lists(st.floats(min_value=0, max_value=180), min_size=1, max_size=100),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=100)
    def test_properties(self, errors, level):
        errors = np.array(errors)
        c = containment(errors, level)
        assert errors.min() <= c <= errors.max()
        # At least level fraction of trials are within the radius.
        assert (errors <= c).mean() >= level - 1e-12

    @given(st.lists(st.floats(min_value=0, max_value=180), min_size=2, max_size=50))
    @settings(max_examples=50)
    def test_monotone_in_level(self, errors):
        errors = np.array(errors)
        assert containment(errors, 0.5) <= containment(errors, 0.9)


class TestErrorBars:
    def test_mean_and_std(self):
        sets = [np.array([1.0, 2.0, 3.0]), np.array([2.0, 3.0, 4.0])]
        mean, std = containment_with_errorbars(sets, 1.0)
        assert mean == pytest.approx(3.5)
        assert std == pytest.approx(0.5)

    def test_single_meta_trial_zero_std(self):
        mean, std = containment_with_errorbars([np.array([1.0, 5.0])], 0.95)
        assert std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            containment_with_errorbars([], 0.68)
