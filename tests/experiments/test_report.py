"""Tests for experiment records."""

import numpy as np
import pytest

from repro.experiments.report import ExperimentRecord, merge_records


class TestExperimentRecord:
    def test_environment_autofilled(self):
        rec = ExperimentRecord(experiment="fig8")
        assert "python" in rec.environment
        assert "numpy" in rec.environment

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRecord(experiment="")

    def test_numpy_values_serializable(self):
        rec = ExperimentRecord(
            experiment="x",
            results={
                "errors": np.array([1.0, 2.0]),
                "mean": np.float64(1.5),
                "count": np.int64(2),
                "nested": {"values": (np.float32(1.0),)},
            },
        )
        text = rec.to_json()
        assert '"mean": 1.5' in text

    def test_save_load_round_trip(self, tmp_path):
        rec = ExperimentRecord(
            experiment="fig9",
            parameters={"fluences": [0.5, 1.0]},
            results={"containment68": {"0.5": 69.1, "1.0": 1.6}},
        )
        path = rec.save(tmp_path / "sub" / "fig9.json")
        loaded = ExperimentRecord.load(path)
        assert loaded.experiment == "fig9"
        assert loaded.parameters["fluences"] == [0.5, 1.0]
        assert loaded.results["containment68"]["1.0"] == 1.6

    def test_load_rejects_non_record(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            ExperimentRecord.load(p)


class TestMergeRecords:
    def test_index_by_id(self):
        a = ExperimentRecord(experiment="a")
        b = ExperimentRecord(experiment="b")
        merged = merge_records([a, b])
        assert set(merged) == {"a", "b"}

    def test_later_wins(self):
        first = ExperimentRecord(experiment="a", results={"v": 1})
        second = ExperimentRecord(experiment="a", results={"v": 2})
        merged = merge_records([first, second])
        assert merged["a"].results["v"] == 2
