"""Tests for the trained-model disk cache (training itself is exercised
by the pipeline fixtures; here we verify the cache semantics cheaply by
monkeypatching the trainer)."""

import numpy as np
import pytest

import repro.experiments.modelzoo as modelzoo
from repro.experiments.modelzoo import TrainedModels, get_or_train_pipeline


class _FakeBundle(TrainedModels):
    pass


def _fake_models(call_log):
    def fake_train_models(seed=2024, exposures_per_angle=20,
                          include_polar=True, swapped=False, **kw):
        call_log.append((seed, exposures_per_angle, include_polar, swapped))
        return TrainedModels(
            pipeline=None,  # type: ignore[arg-type]
            background_net=None,  # type: ignore[arg-type]
            deta_net=None,  # type: ignore[arg-type]
            data=None,  # type: ignore[arg-type]
        )

    return fake_train_models


class TestModelCache:
    def test_trains_once_then_caches(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(modelzoo, "train_models", _fake_models(calls))
        a = get_or_train_pipeline(seed=1, cache_dir=tmp_path)
        b = get_or_train_pipeline(seed=1, cache_dir=tmp_path)
        assert len(calls) == 1
        assert isinstance(a, TrainedModels)
        assert isinstance(b, TrainedModels)

    def test_cache_key_varies_with_args(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(modelzoo, "train_models", _fake_models(calls))
        get_or_train_pipeline(seed=1, cache_dir=tmp_path)
        get_or_train_pipeline(seed=2, cache_dir=tmp_path)
        get_or_train_pipeline(seed=1, include_polar=False, cache_dir=tmp_path)
        get_or_train_pipeline(seed=1, swapped=True, cache_dir=tmp_path)
        assert len(calls) == 4

    def test_cache_files_created(self, tmp_path, monkeypatch):
        monkeypatch.setattr(modelzoo, "train_models", _fake_models([]))
        get_or_train_pipeline(seed=9, cache_dir=tmp_path)
        assert list(tmp_path.glob("models_*.pkl"))

    def test_corrupt_cache_retrains(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(modelzoo, "train_models", _fake_models(calls))
        get_or_train_pipeline(seed=3, cache_dir=tmp_path)
        # Overwrite the cache with a non-TrainedModels pickle.
        import pickle

        path = next(tmp_path.glob("models_*.pkl"))
        with open(path, "wb") as f:
            pickle.dump({"oops": 1}, f)
        get_or_train_pipeline(seed=3, cache_dir=tmp_path)
        assert len(calls) == 2
