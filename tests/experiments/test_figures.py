"""Tests for the figure/table reproduction drivers (fast paths only —
the trial-heavy drivers are exercised by the benchmark suite)."""

import numpy as np
import pytest

from repro.experiments.figures import (
    ContainmentPoint,
    ExperimentScale,
    bench_scale,
    table1,
    table2,
    table3,
    timing_table,
)
from repro.platforms.platforms import ATOM, RPI3B_PLUS


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "lots")
        assert bench_scale() == 1.0

    def test_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        assert bench_scale() == 0.05

    def test_from_env_scales_trials(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "3.0")
        scale = ExperimentScale.from_env()
        assert scale.n_trials == 90
        assert scale.n_meta == 3


class TestContainmentPoint:
    def test_from_error_sets(self):
        sets = [np.linspace(1.0, 10.0, 20), np.linspace(2.0, 12.0, 20)]
        point = ContainmentPoint.from_error_sets(sets)
        assert point.mean95 > point.mean68
        assert point.std95 >= 0.0

    def test_row_format(self):
        point = ContainmentPoint(1.0, 0.1, 5.0, 0.5)
        row = point.row()
        assert "68%" in row and "95%" in row


class TestTimingTables:
    def test_table1_totals(self):
        rows = table1()
        assert rows[-1][0] == "Total (Max 5 iter)"
        assert rows[-1][1] == pytest.approx(834.0, abs=0.5)

    def test_table2_totals(self):
        rows = table2()
        assert rows[-1][1] == pytest.approx(220.7, abs=0.5)

    def test_stage_row_count(self):
        rows = timing_table(RPI3B_PLUS)
        assert len(rows) == 6  # 5 stages + total

    def test_atom_strictly_faster(self):
        rpi = {r[0]: r[1] for r in timing_table(RPI3B_PLUS)}
        atom = {r[0]: r[1] for r in timing_table(ATOM)}
        for stage in rpi:
            assert atom[stage] < rpi[stage]


class TestTable3:
    def test_both_dtypes_present(self):
        reports = table3()
        assert set(reports) == {"int8", "fp32"}

    def test_int8_cheaper(self):
        reports = table3()
        assert reports["int8"].dsp < reports["fp32"].dsp
        assert reports["int8"].bram < reports["fp32"].bram
        assert reports["int8"].ii_cycles < reports["fp32"].ii_cycles


class TestPrintHelpers:
    """Smoke tests: every print_* helper renders without error and
    includes the paper's series labels."""

    def _point(self):
        return ContainmentPoint(1.0, 0.1, 5.0, 0.5)

    def test_print_figure4(self, capsys):
        from repro.experiments.figures import print_figure4

        print_figure4({
            "baseline": self._point(),
            "no_background": self._point(),
            "true_deta": self._point(),
        })
        out = capsys.readouterr().out
        assert "Figure 4" in out and "oracle" in out

    def test_print_figure8(self, capsys):
        from repro.experiments.figures import print_figure8

        print_figure8({0.0: {"baseline": self._point(), "ml": self._point()}})
        out = capsys.readouterr().out
        assert "without NN" in out and "with NN" in out

    def test_print_figure9(self, capsys):
        from repro.experiments.figures import print_figure9

        print_figure9({1.0: {"baseline": self._point(), "ml": self._point()}})
        assert "fluence" in capsys.readouterr().out

    def test_print_figure7(self, capsys):
        from repro.experiments.figures import print_figure7

        print_figure7({40.0: {"polar": self._point(),
                              "no_polar": self._point()}})
        out = capsys.readouterr().out
        assert "Polar" in out and "No Polar" in out

    def test_print_figure10(self, capsys):
        from repro.experiments.figures import print_figure10

        print_figure10({5.0: {"baseline": self._point(), "ml": self._point()}})
        assert "epsilon" in capsys.readouterr().out

    def test_print_figure11(self, capsys):
        from repro.experiments.figures import print_figure11

        print_figure11({0.0: {"fp32": self._point(), "int8": self._point()}})
        out = capsys.readouterr().out
        assert "FP32" in out and "INT8" in out

    def test_print_table3(self, capsys):
        from repro.experiments.figures import print_table3

        print_table3()
        out = capsys.readouterr().out
        assert "Initiation Interval" in out
        assert "597" in out

    def test_print_timing_table(self, capsys):
        from repro.experiments.figures import print_timing_table

        print_timing_table(RPI3B_PLUS)
        out = capsys.readouterr().out
        assert "RPi 3B+" in out and "Total" in out
