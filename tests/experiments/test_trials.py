"""Tests for the trial runner."""

import numpy as np
import pytest

from repro.experiments.trials import TrialConfig, run_meta_trials, run_trials, trial_error


class TestTrialConfig:
    def test_invalid_condition(self):
        with pytest.raises(ValueError):
            TrialConfig(condition="magic")

    def test_defaults(self):
        cfg = TrialConfig()
        assert cfg.condition == "baseline"
        assert cfg.epsilon_percent == 0.0
        assert cfg.infer_dtype == "float64"

    def test_invalid_infer_dtype(self):
        with pytest.raises(ValueError):
            TrialConfig(condition="ml", infer_dtype="float16")

    def test_infer_dtype_requires_ml_condition(self):
        with pytest.raises(ValueError):
            TrialConfig(condition="baseline", infer_dtype="float32")

    def test_float32_runtime_dtype_accepted(self):
        cfg = TrialConfig(condition="ml", infer_dtype="float32")
        assert cfg.infer_dtype == "float32"


class TestTrialError:
    def test_baseline_trial_runs(self, geometry, response):
        err = trial_error(
            geometry, response, np.random.default_rng(0), TrialConfig()
        )
        assert 0.0 <= err <= 180.0

    def test_oracle_conditions_run(self, geometry, response):
        for cond in ("no_background", "true_deta"):
            err = trial_error(
                geometry,
                response,
                np.random.default_rng(1),
                TrialConfig(condition=cond),
            )
            assert 0.0 <= err <= 180.0

    def test_ml_requires_pipeline(self, geometry, response):
        with pytest.raises(ValueError):
            trial_error(
                geometry,
                response,
                np.random.default_rng(2),
                TrialConfig(condition="ml"),
            )

    def test_ml_condition(self, geometry, response, tiny_models):
        err = trial_error(
            geometry,
            response,
            np.random.default_rng(3),
            TrialConfig(condition="ml"),
            ml_pipeline=tiny_models,
        )
        assert 0.0 <= err <= 180.0

    def test_perturbation_applied(self, geometry, response):
        err = trial_error(
            geometry,
            response,
            np.random.default_rng(4),
            TrialConfig(epsilon_percent=10.0),
        )
        assert 0.0 <= err <= 180.0


class TestRunTrials:
    def test_shape_and_range(self, geometry, response):
        errs = run_trials(geometry, response, seed=0, n_trials=3,
                          config=TrialConfig())
        assert errs.shape == (3,)
        assert np.all((errs >= 0) & (errs <= 180))

    def test_reproducible(self, geometry, response):
        a = run_trials(geometry, response, seed=1, n_trials=3,
                       config=TrialConfig())
        b = run_trials(geometry, response, seed=1, n_trials=3,
                       config=TrialConfig())
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, geometry, response):
        a = run_trials(geometry, response, seed=1, n_trials=3,
                       config=TrialConfig())
        b = run_trials(geometry, response, seed=2, n_trials=3,
                       config=TrialConfig())
        assert not np.array_equal(a, b)

    def test_invalid_count(self, geometry, response):
        with pytest.raises(ValueError):
            run_trials(geometry, response, seed=0, n_trials=0,
                       config=TrialConfig())

    def test_meta_trials(self, geometry, response):
        sets = run_meta_trials(
            geometry, response, seed=0, n_trials=2, n_meta=2,
            config=TrialConfig(),
        )
        assert len(sets) == 2
        assert all(s.shape == (2,) for s in sets)
        assert not np.array_equal(sets[0], sets[1])
