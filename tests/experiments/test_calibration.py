"""Tests for containment-calibration campaigns."""

import numpy as np
import pytest

from repro.experiments.calibration import (
    CalibrationReport,
    calibration_trial,
    fit_temperature,
    run_calibration,
)
from repro.experiments.trials import TrialConfig
from repro.localization.hierarchy import SkymapConfig

FAST_SKYMAP = SkymapConfig(resolution_deg=0.5, temperature=2.5)


class TestCalibrationTrial:
    def test_row_shape_and_ranges(self, geometry, response):
        row = calibration_trial(
            geometry,
            response,
            np.random.default_rng(0),
            TrialConfig(condition="true_deta"),
            FAST_SKYMAP,
        )
        assert row.shape == (5,)
        assert 0.0 <= row[0] <= 180.0
        assert row[1] > 0 and row[2] >= row[1]  # a68 <= a90
        assert row[3] in (0.0, 1.0) and row[4] in (0.0, 1.0)

    def test_ml_condition_requires_pipeline(self, geometry, response):
        with pytest.raises(ValueError):
            calibration_trial(
                geometry,
                response,
                np.random.default_rng(1),
                TrialConfig(condition="ml"),
                FAST_SKYMAP,
            )


class TestRunCalibration:
    @pytest.fixture(scope="class")
    def report(self, geometry, response):
        return run_calibration(
            geometry, response, seed=11, n_trials=10,
            skymap=FAST_SKYMAP, n_workers=2,
        )

    def test_report_well_formed(self, report):
        assert report.n_trials == 10
        assert report.errors_deg.shape == (10,)
        assert np.all(np.isfinite(report.errors_deg))
        ok = np.isfinite(report.area90_deg2)
        assert np.all(report.area90_deg2[ok] >= report.area68_deg2[ok])
        assert report.contained68.dtype == bool

    def test_oracle_condition_roughly_calibrated(self, report):
        # The fitted temperature keeps 90% coverage near 0.9; at n=10 a
        # loose lower bound is all a seeded test can honestly assert.
        assert report.fraction(0.9) >= 0.6
        assert np.median(report.errors_deg) < 2.0

    def test_worker_count_invariance(self, geometry, response, report):
        serial = run_calibration(
            geometry, response, seed=11, n_trials=10,
            skymap=FAST_SKYMAP, n_workers=1,
        )
        assert np.array_equal(serial.errors_deg, report.errors_deg)
        assert np.array_equal(serial.contained90, report.contained90)

    def test_summary_is_jsonable(self, report):
        import json

        s = report.summary()
        json.dumps(s)
        assert s["n_trials"] == 10
        assert 0.0 <= s["fraction90"] <= 1.0

    def test_fraction_validates_level(self, report):
        with pytest.raises(ValueError):
            report.fraction(0.5)

    def test_invalid_trial_count(self, geometry, response):
        with pytest.raises(ValueError):
            run_calibration(geometry, response, seed=0, n_trials=0)

    def test_to_record(self, report):
        rec = report.to_record({"seed": 11})
        assert rec.experiment == "skymap_calibration"
        assert rec.parameters["seed"] == 11
        assert rec.results["fraction90"] == report.fraction(0.9)


class TestFitTemperature:
    def test_picks_first_calibrated_candidate(self, geometry, response):
        t, rep = fit_temperature(
            geometry, response, seed=11, n_trials=8,
            skymap=SkymapConfig(resolution_deg=0.5),
            temperatures=(1.0, 2.5), n_workers=2,
        )
        assert t in (1.0, 2.5)
        assert isinstance(rep, CalibrationReport)
        # Either the fit converged (coverage reached the level) or it
        # fell back to the hottest candidate.
        assert rep.fraction(0.9) >= 0.9 or t == 2.5

    def test_empty_grid_rejected(self, geometry, response):
        with pytest.raises(ValueError):
            fit_temperature(
                geometry, response, seed=0, n_trials=1, temperatures=()
            )
