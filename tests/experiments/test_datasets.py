"""Tests for training-data generation."""

import numpy as np
import pytest

from repro.experiments.datasets import (
    TrainingData,
    collect_exposure_rings,
    generate_training_rings,
)
from repro.sources.grb import LABEL_BACKGROUND, LABEL_GRB


class TestCollectExposureRings:
    def test_arrays_aligned(self, geometry, response):
        data = collect_exposure_rings(
            geometry, response, np.random.default_rng(0), polar_deg=20.0
        )
        n = data.num_rings
        assert data.features.shape == (n, 13)
        assert data.labels.shape == (n,)
        assert data.true_eta_errors.shape == (n,)
        assert data.prop_deta.shape == (n,)

    def test_polar_feature_jittered_around_truth(self, geometry, response):
        data = collect_exposure_rings(
            geometry,
            response,
            np.random.default_rng(1),
            polar_deg=40.0,
            polar_jitter_deg=5.0,
        )
        assert np.all(np.abs(data.features[:, 12] - 40.0) <= 5.0)
        assert np.all(data.polar_true == 40.0)

    def test_both_labels_present(self, geometry, response):
        data = collect_exposure_rings(
            geometry, response, np.random.default_rng(2), polar_deg=0.0
        )
        assert (data.labels == LABEL_GRB).any()
        assert (data.labels == LABEL_BACKGROUND).any()


class TestGenerateTrainingRings:
    def test_rebalanced_to_target(self, training_data):
        frac = (training_data.labels == LABEL_BACKGROUND).mean()
        assert frac == pytest.approx(0.4, abs=0.02)

    def test_covers_requested_angles(self, training_data):
        assert set(np.unique(training_data.polar_true)) == {0.0, 40.0, 80.0}

    def test_grb_only_subset(self, training_data):
        grb = training_data.grb_only()
        assert np.all(grb.labels == LABEL_GRB)
        assert grb.num_rings == int((training_data.labels == LABEL_GRB).sum())

    def test_reproducible(self, geometry, response):
        kw = dict(
            polar_angles_deg=np.array([0.0]),
            exposures_per_angle=2,
        )
        a = generate_training_rings(geometry, response, seed=5, **kw)
        b = generate_training_rings(geometry, response, seed=5, **kw)
        assert np.array_equal(a.features, b.features)

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            TrainingData.concatenate([])

    def test_no_rebalance_keeps_raw(self, geometry, response):
        data = generate_training_rings(
            geometry,
            response,
            seed=6,
            polar_angles_deg=np.array([0.0]),
            exposures_per_angle=2,
            background_fraction=None,
        )
        frac = (data.labels == LABEL_BACKGROUND).mean()
        assert frac > 0.5  # raw composition is background-heavy
