"""Tests for the grid-sweep harness."""

import numpy as np
import pytest

from repro.experiments.sweeps import sweep
from repro.experiments.trials import TrialConfig


class TestSweep:
    def test_grid_order_and_overrides(self, geometry, response):
        points = sweep(
            geometry,
            response,
            TrialConfig(),
            grid={"fluence_mev_cm2": [1.0, 2.0], "polar_angle_deg": [0.0, 30.0]},
            seed=1,
            n_trials=2,
        )
        assert len(points) == 4
        combos = [tuple(sorted(p.overrides.items())) for p in points]
        assert len(set(combos)) == 4
        for p in points:
            assert p.errors.shape == (2,)

    def test_unknown_field_rejected(self, geometry, response):
        with pytest.raises(ValueError):
            sweep(
                geometry, response, TrialConfig(),
                grid={"brightness": [1.0]}, seed=0, n_trials=1,
            )

    def test_empty_grid_rejected(self, geometry, response):
        with pytest.raises(ValueError):
            sweep(geometry, response, TrialConfig(), grid={}, seed=0,
                  n_trials=1)

    def test_containment_accessor(self, geometry, response):
        points = sweep(
            geometry, response, TrialConfig(),
            grid={"fluence_mev_cm2": [2.0]}, seed=2, n_trials=3,
        )
        c = points[0].containment(0.68)
        assert 0.0 <= c <= 180.0

    def test_reproducible(self, geometry, response):
        kwargs = dict(
            grid={"fluence_mev_cm2": [1.0]}, seed=3, n_trials=2,
        )
        a = sweep(geometry, response, TrialConfig(), **kwargs)
        b = sweep(geometry, response, TrialConfig(), **kwargs)
        assert np.array_equal(a[0].errors, b[0].errors)
