"""Tests for the physics self-validation suite."""

import numpy as np
import pytest

from repro.constants import PLASTIC
from repro.geometry.tiles import adapt_geometry
from repro.validation import (
    check_attenuation,
    check_energy_conservation,
    check_klein_nishina,
    passed,
    run_all,
)


class TestChecks:
    def test_attenuation_passes_on_default(self):
        result = check_attenuation(n_photons=30_000)
        assert result.passed, str(result)

    def test_attenuation_other_material(self):
        result = check_attenuation(material=PLASTIC, n_photons=30_000)
        assert result.passed, str(result)

    def test_energy_conservation_exact(self):
        result = check_energy_conservation(n_photons=5_000)
        assert result.measured < 1e-9

    def test_klein_nishina_mean(self):
        result = check_klein_nishina(n_samples=50_000)
        assert result.passed, str(result)

    def test_run_all_passes(self):
        results = run_all()
        assert passed(results), "\n".join(str(r) for r in results)

    def test_run_all_on_modified_geometry(self):
        geo = adapt_geometry(num_layers=2, tile_thickness_cm=2.0)
        results = run_all(geo)
        assert passed(results), "\n".join(str(r) for r in results)

    def test_result_string(self):
        result = check_klein_nishina(n_samples=10_000)
        text = str(result)
        assert "PASS" in text or "FAIL" in text
        assert "measured" in text

    def test_failure_detectable(self):
        """A deliberately wrong expectation reports failed."""
        from repro.validation import CheckResult

        bad = CheckResult(name="x", measured=1.0, expected=2.0, tolerance=0.1)
        assert not bad.passed
