"""Property-based tests of the HLS cost model's structural invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.hls_model import batch_latency_cycles, synthesize_kernel

widths_strategy = st.lists(
    st.integers(min_value=1, max_value=512), min_size=2, max_size=6
)


@given(widths_strategy, st.sampled_from(["int8", "fp32"]))
@settings(max_examples=40, deadline=None)
def test_kernel_invariants(widths, dtype):
    report = synthesize_kernel(widths=tuple(widths), dtype=dtype)
    # II is the bottleneck stage; latency covers at least the bottleneck.
    assert report.ii_cycles == max(l.ii_cycles for l in report.layers)
    assert report.latency_cycles >= report.ii_cycles
    assert report.latency_cycles == sum(l.latency_cycles for l in report.layers)
    # Resources are non-negative (tiny kernels can round DSP to 0) and
    # weights counted exactly.
    assert report.dsp >= 0 and report.ff >= 0 and report.lut >= 0
    if report.num_weights >= 64:
        assert report.dsp > 0 and report.ff > 0 and report.lut > 0
    assert report.bram >= 1
    assert report.num_weights == sum(
        a * b for a, b in zip(widths[:-1], widths[1:])
    )


#: Compute-dominated MLP kernels: every layer exceeds the full-unroll
#: threshold (192*192 MACs > 16384), so both datatypes serialize output
#: groups and INT8's doubled unroll wins.  For small layers the
#: calibrated INT8 overhead of 90 cycles/beat exceeds FP32's 46 and the
#: speed ordering genuinely flips — a model property, not a bug.
realistic_widths = st.lists(
    st.integers(min_value=192, max_value=512), min_size=2, max_size=6
)


@given(realistic_widths)
@settings(max_examples=30, deadline=None)
def test_int8_never_slower_or_bigger(widths):
    r8 = synthesize_kernel(widths=tuple(widths), dtype="int8")
    r32 = synthesize_kernel(widths=tuple(widths), dtype="fp32")
    assert r8.ii_cycles <= r32.ii_cycles
    assert r8.dsp <= r32.dsp
    assert r8.ff <= r32.ff
    # BRAM only wins for realistically sized kernels: the INT8 design
    # holds a fixed 15 blocks of stream buffers, which dominates when the
    # FP32 weight store is tiny.
    if r32.num_weights * 4 > 15 * 4608:
        assert r8.bram <= r32.bram


@given(
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=1, max_value=2_000),
    st.integers(min_value=0, max_value=2_000),
)
@settings(max_examples=50, deadline=None)
def test_batch_latency_law(n, ii, extra):
    latency = ii + extra
    total = batch_latency_cycles(n, ii, latency)
    # Monotone in n, exact at n = 1.
    assert total == n * ii + (latency - ii)
    assert batch_latency_cycles(1, ii, latency) == latency
    if n > 1:
        assert total > batch_latency_cycles(n - 1, ii, latency)
