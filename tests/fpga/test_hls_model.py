"""Tests for the FPGA HLS cost model (paper Table III)."""

import numpy as np
import pytest

from repro.fpga.hls_model import (
    PAPER_NUM_RINGS,
    PAPER_WIDTHS,
    batch_latency_cycles,
    synthesize_kernel,
)

PAPER = {
    "int8": dict(latency=881, ii=692, bram=15, dsp=4304, ff=366545,
                 lut=775986, ms=4.13),
    "fp32": dict(latency=1891, ii=1209, bram=144, dsp=7467, ff=651014,
                 lut=817041, ms=7.22),
}


class TestBatchLatency:
    def test_formula(self):
        assert batch_latency_cycles(10, 100, 150) == 10 * 100 + 50

    def test_single_input_is_latency(self):
        assert batch_latency_cycles(1, 100, 150) == 150

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            batch_latency_cycles(0, 100, 150)
        with pytest.raises(ValueError):
            batch_latency_cycles(5, 100, 50)


class TestSynthesizeKernel:
    def test_ii_matches_paper(self):
        for dtype in ("int8", "fp32"):
            r = synthesize_kernel(dtype=dtype)
            assert r.ii_cycles == pytest.approx(PAPER[dtype]["ii"], rel=0.01)

    def test_resources_match_paper(self):
        for dtype in ("int8", "fp32"):
            r = synthesize_kernel(dtype=dtype)
            assert r.dsp == pytest.approx(PAPER[dtype]["dsp"], rel=0.02)
            assert r.ff == pytest.approx(PAPER[dtype]["ff"], rel=0.02)
            assert r.lut == pytest.approx(PAPER[dtype]["lut"], rel=0.02)
            assert r.bram == pytest.approx(PAPER[dtype]["bram"], rel=0.15)

    def test_batch_latency_matches_paper(self):
        for dtype in ("int8", "fp32"):
            r = synthesize_kernel(dtype=dtype)
            assert r.batch_latency_ms(PAPER_NUM_RINGS) == pytest.approx(
                PAPER[dtype]["ms"], rel=0.02
            )

    def test_single_input_latency_in_ballpark(self):
        for dtype in ("int8", "fp32"):
            r = synthesize_kernel(dtype=dtype)
            assert r.latency_cycles == pytest.approx(
                PAPER[dtype]["latency"], rel=0.4
            )
            assert r.latency_cycles >= r.ii_cycles

    def test_throughput_ratio(self):
        r8 = synthesize_kernel(dtype="int8")
        r32 = synthesize_kernel(dtype="fp32")
        ratio = r8.throughput_per_second() / r32.throughput_per_second()
        assert ratio == pytest.approx(1.75, abs=0.1)

    def test_num_weights(self):
        r = synthesize_kernel()
        assert r.num_weights == sum(
            a * b for a, b in zip(PAPER_WIDTHS[:-1], PAPER_WIDTHS[1:])
        )

    def test_wider_network_costs_more(self):
        small = synthesize_kernel(widths=(13, 64, 1))
        big = synthesize_kernel(widths=(13, 512, 256, 1))
        assert big.dsp > small.dsp
        assert big.ii_cycles >= small.ii_cycles

    def test_clock_scales_ms_not_cycles(self):
        slow = synthesize_kernel(clock_ns=10.0)
        fast = synthesize_kernel(clock_ns=5.0)
        assert slow.ii_cycles == fast.ii_cycles
        assert slow.batch_latency_ms(100) == pytest.approx(
            2.0 * fast.batch_latency_ms(100)
        )

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError):
            synthesize_kernel(dtype="fp16")

    def test_bad_widths_rejected(self):
        with pytest.raises(ValueError):
            synthesize_kernel(widths=(13,))
        with pytest.raises(ValueError):
            synthesize_kernel(widths=(13, 0, 1))
