"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.fluence == 1.0
        assert args.polar == 0.0

    def test_train_args(self):
        args = build_parser().parse_args(
            ["train", "--output", "x.pkl", "--exposures-per-angle", "3"]
        )
        assert args.output == "x.pkl"
        assert args.exposures_per_angle == 3

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_simulate_runs(self, capsys):
        rc = main(["simulate", "--fluence", "2.0", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "localization error" in out

    def test_localize_round_trip(self, tmp_path, tiny_models, capsys):
        from repro.io.datasets import save_pipeline

        path = tmp_path / "p.pkl"
        save_pipeline(tiny_models, path)
        rc = main(
            [
                "localize",
                "--pipeline", str(path),
                "--trials", "2",
                "--seed", "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "68% containment" in out
