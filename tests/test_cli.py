"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.fluence == 1.0
        assert args.polar == 0.0

    def test_train_args(self):
        args = build_parser().parse_args(
            ["train", "--output", "x.pkl", "--exposures-per-angle", "3"]
        )
        assert args.output == "x.pkl"
        assert args.exposures_per_angle == 3

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.chunks == 4
        assert args.chunk_size == 4
        assert args.deadline_ms == 2.0
        assert args.max_requests == 64
        assert args.queue_limit == 256

    def test_serve_load_defaults(self):
        args = build_parser().parse_args(
            ["serve-load", "--clients", "3", "--deadline-ms", "0.5"]
        )
        assert args.clients == 3
        assert args.requests == 4
        assert args.deadline_ms == 0.5
        assert not args.json


class TestCommands:
    def test_simulate_runs(self, capsys):
        rc = main(["simulate", "--fluence", "2.0", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "localization error" in out

    def test_simulate_status_goes_to_stderr(self, capsys):
        rc = main(["simulate", "--seed", "3"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "[repro]" in captured.err
        assert "[repro]" not in captured.out

    def test_quiet_suppresses_status(self, capsys):
        rc = main(["simulate", "--seed", "3", "--quiet"])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "localization error" in captured.out

    def test_localize_round_trip(self, tmp_path, tiny_models, capsys):
        from repro.io.datasets import save_pipeline

        path = tmp_path / "p.pkl"
        save_pipeline(tiny_models, path)
        rc = main(
            [
                "localize",
                "--pipeline", str(path),
                "--trials", "2",
                "--seed", "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "68% containment" in out

    def test_serve_streams_chunks(self, tmp_path, tiny_models, capsys):
        from repro.io.datasets import save_pipeline

        path = tmp_path / "p.pkl"
        save_pipeline(tiny_models, path)
        rc = main(
            [
                "serve",
                "--pipeline", str(path),
                "--chunks", "2",
                "--chunk-size", "2",
                "--halt-after", "1",
                "--seed", "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "chunk 1: 2 localizations" in out
        assert "chunk 2: 2 localizations" in out
        assert "served 4 requests" in out

    def test_serve_load_reports_json(self, tmp_path, tiny_models, capsys):
        import json

        from repro.io.datasets import save_pipeline

        path = tmp_path / "p.pkl"
        save_pipeline(tiny_models, path)
        rc = main(
            [
                "serve-load",
                "--pipeline", str(path),
                "--clients", "2",
                "--requests", "2",
                "--pool", "2",
                "--halt-after", "1",
                "--seed", "3",
                "--json",
            ]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["completed"] == 4
        assert report["n_clients"] == 2
        assert report["req_per_s"] > 0
        assert report["p99_ms"] >= report["p50_ms"]


class TestTrace:
    def test_trace_writes_jsonl_and_disables_after(self, tmp_path, capsys):
        import repro.obs as obs

        trace_file = tmp_path / "t.jsonl"
        rc = main(["simulate", "--seed", "3", "--trace", str(trace_file)])
        assert rc == 0
        assert not obs.is_enabled()
        events = obs.load_jsonl(trace_file)
        names = {ev["name"] for ev in events if ev["type"] == "span"}
        assert "cli.simulate" in names
        assert "physics.transport" in names
        assert "localize.localize_rings" in names
        # The root span parents the instrumented pipeline stages.
        root = next(ev for ev in events if ev.get("name") == "cli.simulate")
        assert root["parent_id"] is None

    def test_traced_and_untraced_stdout_identical(self, tmp_path, capsys):
        rc = main(["simulate", "--seed", "11", "--quiet"])
        assert rc == 0
        plain = capsys.readouterr().out
        rc = main(["simulate", "--seed", "11", "--quiet",
                   "--trace", str(tmp_path / "t.jsonl")])
        assert rc == 0
        traced = capsys.readouterr().out
        assert plain == traced

    def test_trace_summary_renders_table(self, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        main(["simulate", "--seed", "3", "--quiet", "--trace", str(trace_file)])
        capsys.readouterr()
        rc = main(["trace-summary", str(trace_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cli.simulate" in out
        assert "% parent" in out

    def test_trace_summary_json(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "t.jsonl"
        main(["simulate", "--seed", "3", "--quiet", "--trace", str(trace_file)])
        capsys.readouterr()
        rc = main(["trace-summary", str(trace_file), "--json"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert "cli.simulate" in summary["stages"]
        assert set(summary) >= {"stages", "coverage", "counters",
                                "gauges", "histograms"}


class TestProfileAndMetrics:
    def test_profile_rides_the_trace_file(self, tmp_path, capsys):
        import repro.obs as obs

        trace_file = tmp_path / "t.jsonl"
        rc = main(["simulate", "--seed", "3", "--quiet",
                   "--trace", str(trace_file), "--profile",
                   "--profile-hz", "300", "--resources"])
        assert rc == 0
        assert not obs.profile.is_running()
        assert not obs.resources.is_running()
        events = obs.load_jsonl(trace_file)
        profiles = [ev for ev in events if ev["type"] == "profile"]
        assert len(profiles) == 1
        assert profiles[0]["samples"] > 0
        gauges = {ev["name"] for ev in events if ev["type"] == "gauge"}
        assert "res.rss_peak_mb" in gauges

    def test_profile_summary_renders_and_writes_folded(self, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        folded = tmp_path / "folded.txt"
        main(["simulate", "--seed", "3", "--quiet",
              "--trace", str(trace_file), "--profile-hz", "300"])
        capsys.readouterr()
        rc = main(["profile-summary", str(trace_file), "--top", "5",
                   "--folded", str(folded)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "samples over" in out
        assert folded.exists()
        line = folded.read_text().splitlines()[0]
        stack, count = line.rsplit(" ", 1)
        assert ";" in stack and int(count) > 0

    def test_profile_summary_without_profile_events(self, tmp_path, capsys):
        trace_file = tmp_path / "t.jsonl"
        main(["simulate", "--seed", "3", "--quiet", "--trace", str(trace_file)])
        capsys.readouterr()
        rc = main(["profile-summary", str(trace_file)])
        assert rc == 0
        assert "no profile events" in capsys.readouterr().out

    def test_profile_requires_trace(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["simulate", "--profile"])
        assert "require --trace" in capsys.readouterr().err

    def test_metrics_out_streams_without_trace(self, tmp_path, capsys):
        import repro.obs as obs

        live = tmp_path / "live.jsonl"
        rc = main(["simulate", "--seed", "3", "--quiet",
                   "--metrics-out", str(live),
                   "--metrics-interval", "0.05"])
        assert rc == 0
        assert not obs.is_enabled()
        lines = obs.export.load_stream(live)
        assert lines
        assert lines[-1]["counters"]["transport.photons"] > 0
