"""Parity suite: eager vs planned vs INT8, per the plan's contract.

The *float64* planned backend must be bit-identical to the eager module
stack whenever a block runs as a single tile (the default for per-event
blocks) — the runtime default dtype is float32, so bit-parity tests
request float64 explicitly; the INT8 plan must match
``QuantizedMLP.forward`` exactly under any tiling (integer arithmetic
is row-independent).
"""

import numpy as np
import pytest

from repro.infer import (
    EagerEngine,
    InferRequest,
    build_engine,
    compile_int8_plan,
    compile_plan,
    evaluate_request,
)
from repro.models.background import build_background_net
from repro.models.deta import build_deta_net
from repro.nn.layers import Dropout, Linear, ReLU, Sequential
from repro.nn.serialize import load_model_params, save_model_params
from repro.quantization.qat import convert_to_int8, prepare_qat


def _warmed(net, rng, width):
    """Training pass to populate BatchNorm running stats, then eval."""
    net.train()
    net.forward(rng.normal(size=(256, width)))
    net.eval()
    return net


@pytest.fixture(scope="module")
def nets():
    """Paper-shaped (but narrow) background/dEta nets with warm BN stats."""
    rng = np.random.default_rng(42)
    out = {}
    out["background"] = _warmed(
        build_background_net(hidden_widths=(32, 16), rng=rng), rng, 13
    )
    out["background_swapped"] = _warmed(
        build_background_net(hidden_widths=(32, 16), rng=rng, swapped=True),
        rng, 13,
    )
    out["deta"] = _warmed(
        build_deta_net(hidden_widths=(8, 16, 8), rng=rng), rng, 13
    )
    return out


class TestEagerPlannedBitParity:
    @pytest.mark.parametrize(
        "name", ["background", "background_swapped", "deta"]
    )
    def test_bitwise_on_event_sized_blocks(self, nets, name):
        net = nets[name]
        rng = np.random.default_rng(7)
        plan = compile_plan(net, dtype=np.float64)
        for n in (597, 1, 3):  # paper's first-iteration block, then edges
            x = rng.normal(size=(n, 13))
            np.testing.assert_array_equal(plan.run(x), net.forward(x))

    def test_bitwise_on_empty_block(self, nets):
        plan = compile_plan(nets["background"])
        out = plan.run(np.zeros((0, 13)))
        assert out.shape == (0, 1)

    def test_bitwise_with_dropout_layers(self):
        rng = np.random.default_rng(8)
        net = Sequential(
            Linear(6, 12, rng), ReLU(), Dropout(0.4, rng=rng),
            Linear(12, 1, rng),
        )
        net.eval()
        x = rng.normal(size=(100, 6))
        np.testing.assert_array_equal(
            compile_plan(net, dtype=np.float64).run(x), net.forward(x)
        )

    def test_retiled_block_matches_to_ulp(self, nets):
        net = nets["background"]
        rng = np.random.default_rng(9)
        x = rng.normal(size=(100, 13))
        plan = compile_plan(net, micro_batch=16, dtype=np.float64)
        np.testing.assert_allclose(
            plan.run(x), net.forward(x), rtol=1e-12, atol=1e-14
        )


class TestInt8Parity:
    @pytest.fixture(scope="class")
    def quantized(self):
        rng = np.random.default_rng(3)
        net = Sequential(
            Linear(13, 16, rng), ReLU(), Linear(16, 8, rng), ReLU(),
            Linear(8, 1, rng),
        )
        qat = prepare_qat(net)
        qat.train()
        x = rng.normal(size=(4000, 13))
        qat.forward(x)
        qat.eval()
        return convert_to_int8(qat), x

    def test_plan_matches_eager_int8_exactly(self, quantized):
        engine, x = quantized
        plan = compile_int8_plan(engine)
        np.testing.assert_array_equal(
            plan.run(x[:500]), engine.forward(x[:500])
        )

    def test_exact_under_any_tiling(self, quantized):
        engine, x = quantized
        plan = compile_int8_plan(engine, micro_batch=7)
        np.testing.assert_array_equal(
            plan.run(x[:100]), engine.forward(x[:100])
        )

    def test_edge_batches(self, quantized):
        engine, x = quantized
        plan = compile_int8_plan(engine)
        for n in (0, 1):
            out = plan.run(x[:n])
            assert out.shape == (n, 1)
            np.testing.assert_array_equal(out, engine.forward(x[:n]))

    def test_layer_widths(self, quantized):
        engine, _ = quantized
        assert compile_int8_plan(engine).layer_widths == (13, 16, 8, 1)


class TestEngines:
    def test_planned_engine_bitwise_vs_eager(self, tiny_models, rings, events):
        from repro.models.features import extract_features

        pipeline = tiny_models
        feats = extract_features(
            rings, events, polar_guess_deg=20.0,
            include_polar=pipeline.background_net.include_polar,
        )
        eager = build_engine(pipeline, "reference")
        planned = build_engine(pipeline, "planned", dtype="float64")
        assert isinstance(eager, EagerEngine)
        for kind in ("background", "deta"):
            request = InferRequest(kind, feats)
            np.testing.assert_array_equal(
                evaluate_request(planned, request),
                evaluate_request(eager, request),
            )

    def test_unknown_backend_rejected(self, tiny_models):
        with pytest.raises(ValueError, match="unknown backend"):
            build_engine(tiny_models, "jit")

    def test_int8_backend_requires_quantized_bundle(self, tiny_models):
        with pytest.raises(ValueError, match="Int8BackgroundNet"):
            build_engine(tiny_models, "int8")

    def test_unknown_request_kind_rejected(self, tiny_models):
        engine = build_engine(tiny_models, "reference")
        with pytest.raises(ValueError, match="request kind"):
            evaluate_request(engine, InferRequest("logits", np.zeros((1, 13))))


class TestSerializationRoundTrip:
    def test_save_load_compile_is_bitwise(self, tmp_path, nets):
        rng = np.random.default_rng(10)
        src = nets["background"]
        path = tmp_path / "bg.npz"
        save_model_params(src, path)
        clone = build_background_net(
            hidden_widths=(32, 16), rng=np.random.default_rng(0)
        )
        load_model_params(clone, path)
        clone.eval()
        x = rng.normal(size=(64, 13))
        np.testing.assert_array_equal(
            compile_plan(clone).run(x), compile_plan(src).run(x)
        )


class TestEndToEndCampaignParity:
    def test_planned_backend_bitwise_on_full_campaign(
        self, geometry, response, tiny_models
    ):
        from repro.experiments.trials import TrialConfig, run_trials

        ref = run_trials(
            geometry, response, seed=13, n_trials=3,
            config=TrialConfig(condition="ml"), ml_pipeline=tiny_models,
        )
        planned = run_trials(
            geometry, response, seed=13, n_trials=3,
            config=TrialConfig(condition="ml", infer_backend="planned"),
            ml_pipeline=tiny_models,
        )
        np.testing.assert_array_equal(planned, ref)

    def test_explicit_engine_in_localize(self, tiny_models, events):
        engine = build_engine(tiny_models, "planned", dtype="float64")
        ref = tiny_models.localize(events, np.random.default_rng(5))
        out = tiny_models.localize(events, np.random.default_rng(5),
                                   engine=engine)
        np.testing.assert_array_equal(out.direction, ref.direction)
        assert out.iterations == ref.iterations
        assert out.rings_kept == ref.rings_kept
        assert out.converged == ref.converged
