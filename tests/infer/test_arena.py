"""Activation arenas: sizing, reuse, tiling, and pickling behavior."""

import pickle

import numpy as np
import pytest

from repro.infer.arena import DEFAULT_MICRO_BATCH, ActivationArena
from repro.infer.plan import compile_plan
from repro.nn.layers import Linear, ReLU, Sequential


def _plan(seed=0, micro_batch=DEFAULT_MICRO_BATCH):
    rng = np.random.default_rng(seed)
    net = Sequential(
        Linear(6, 16, rng), ReLU(), Linear(16, 8, rng), ReLU(),
        Linear(8, 2, rng),
    )
    net.eval()
    return compile_plan(net, micro_batch=micro_batch)


class TestArenaAllocation:
    def test_buffer_shapes_match_op_widths(self):
        plan = _plan()
        arena = ActivationArena(plan, micro_batch=32)
        widths = plan.buffer_widths()
        assert len(arena.buffers) == len(widths)
        for buf, width in zip(arena.buffers, widths):
            assert buf.shape == (32, width)
            assert buf.dtype == plan.dtype

    def test_nbytes_accounts_all_buffers(self):
        plan = _plan()
        arena = ActivationArena(plan, micro_batch=16)
        itemsize = np.dtype(plan.dtype).itemsize
        expected = sum(16 * w * itemsize for w in plan.buffer_widths())
        assert arena.nbytes == expected

    def test_micro_batch_must_be_positive(self):
        with pytest.raises(ValueError):
            ActivationArena(_plan(), micro_batch=0)

    def test_plan_arena_is_reused_across_runs(self):
        plan = _plan()
        first = plan.arena()
        plan.run(np.zeros((3, 6)))
        assert plan.arena() is first

    def test_compatible_with_rejects_other_plan(self):
        plan_a, plan_b = _plan(0), _plan(1)
        rng = np.random.default_rng(2)
        net = Sequential(Linear(6, 4, rng))
        net.eval()
        other = compile_plan(net)
        arena = ActivationArena(plan_a, micro_batch=8)
        assert arena.compatible_with(plan_b)  # same op widths
        assert not arena.compatible_with(other)
        with pytest.raises(ValueError, match="different plan"):
            other.run(np.zeros((2, 6)), arena=arena)


class TestTiling:
    def test_edge_batches(self):
        plan = _plan(micro_batch=8)
        rng = np.random.default_rng(3)
        for n in (0, 1, 7, 8, 9, 40):
            out = plan.run(rng.normal(size=(n, 6)))
            assert out.shape == (n, 2)

    def test_retiled_rows_match_single_tile_to_ulp(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(50, 6))
        big = _plan(seed=5)  # one tile
        small = _plan(seed=5, micro_batch=8)  # forces re-tiling
        np.testing.assert_allclose(
            small.run(x), big.run(x), rtol=1e-12, atol=1e-14
        )

    def test_retiling_is_deterministic(self):
        plan = _plan(seed=6, micro_batch=8)
        rng = np.random.default_rng(7)
        x = rng.normal(size=(30, 6))
        np.testing.assert_array_equal(plan.run(x), plan.run(x))

    def test_output_not_a_view_into_arena(self):
        plan = _plan(seed=8, micro_batch=64)
        rng = np.random.default_rng(9)
        x = rng.normal(size=(5, 6))
        out = plan.run(x)
        saved = out.copy()
        plan.run(rng.normal(size=(5, 6)))  # would clobber a view
        np.testing.assert_array_equal(out, saved)

    def test_wrong_input_shape_rejected(self):
        plan = _plan()
        with pytest.raises(ValueError, match="expected"):
            plan.run(np.zeros((4, 5)))
        with pytest.raises(ValueError, match="expected"):
            plan.run(np.zeros(6))


class TestPickling:
    def test_pickle_drops_arena_and_stays_bitwise(self):
        plan = _plan(seed=10)
        rng = np.random.default_rng(11)
        x = rng.normal(size=(20, 6))
        before = plan.run(x)
        assert plan._arena is not None
        blob = pickle.dumps(plan)
        clone = pickle.loads(blob)
        assert clone._arena is None  # buffers are per-process scratch
        np.testing.assert_array_equal(clone.run(x), before)

    def test_pickled_size_excludes_buffers(self):
        plan = _plan(seed=12)
        plan.arena()  # materialize ~DEFAULT_MICRO_BATCH * width buffers
        assert len(pickle.dumps(plan)) < plan.arena().nbytes / 10
