"""Campaign-level batched localization (``localize_many``)."""

import numpy as np
import pytest

from repro.infer import GatherScratch, build_engine, localize_many


def _simulated(geometry, response, seed, n):
    """Simulate ``n`` trials' event sets the way the campaign path does."""
    from repro.experiments.trials import TrialConfig, _simulate_trial

    config = TrialConfig(condition="ml")
    seeds = np.random.SeedSequence(seed).spawn(n)
    event_sets, grbs = [], []
    for s in seeds:
        events, grb = _simulate_trial(
            geometry, response, np.random.default_rng(s), config
        )
        event_sets.append(events)
        grbs.append(grb)
    return seeds, event_sets, grbs


class TestLocalizeMany:
    def test_matches_per_event_localization(
        self, geometry, response, tiny_models
    ):
        seeds, event_sets, grbs = _simulated(geometry, response, 17, 3)
        engine = build_engine(tiny_models, "planned", dtype="float64")

        # Per-event references (fresh rngs advanced past the simulation
        # draws, reproduced by re-simulating from the same seeds).
        ref = []
        for s, events in zip(seeds, event_sets):
            from repro.experiments.trials import TrialConfig, _simulate_trial

            rng = np.random.default_rng(s)
            _simulate_trial(geometry, response, rng, TrialConfig(condition="ml"))
            ref.append(tiny_models.localize(events, rng, engine=engine))

        rngs = []
        for s in seeds:
            from repro.experiments.trials import TrialConfig, _simulate_trial

            rng = np.random.default_rng(s)
            _simulate_trial(geometry, response, rng, TrialConfig(condition="ml"))
            rngs.append(rng)
        outcomes = localize_many(tiny_models, event_sets, rngs, engine=engine)

        assert len(outcomes) == 3
        for out, r, grb in zip(outcomes, ref, grbs):
            # RNG draw order and control flow are identical per event;
            # only the BLAS row-block shape differs, so errors agree to
            # float noise (and usually bitwise).
            assert out.iterations == r.iterations
            assert out.rings_kept == r.rings_kept
            assert abs(
                out.error_degrees(grb.source_direction)
                - r.error_degrees(grb.source_direction)
            ) < 1e-6

    def test_single_event_group_is_bitwise(
        self, geometry, response, tiny_models
    ):
        seeds, event_sets, _ = _simulated(geometry, response, 23, 1)
        from repro.experiments.trials import TrialConfig, _simulate_trial

        engine = build_engine(tiny_models, "planned")
        rng_a = np.random.default_rng(seeds[0])
        _simulate_trial(geometry, response, rng_a, TrialConfig(condition="ml"))
        ref = tiny_models.localize(event_sets[0], rng_a, engine=engine)

        rng_b = np.random.default_rng(seeds[0])
        _simulate_trial(geometry, response, rng_b, TrialConfig(condition="ml"))
        (out,) = localize_many(
            tiny_models, event_sets, [rng_b], engine=engine
        )
        np.testing.assert_array_equal(out.direction, ref.direction)
        assert out.iterations == ref.iterations

    def test_builds_default_engine(self, geometry, response, tiny_models):
        _, event_sets, _ = _simulated(geometry, response, 29, 1)
        outcomes = localize_many(
            tiny_models, event_sets, [np.random.default_rng(0)]
        )
        assert len(outcomes) == 1 and outcomes[0] is not None

    def test_rng_count_mismatch_rejected(self, tiny_models):
        with pytest.raises(ValueError, match="one rng per"):
            localize_many(tiny_models, [], [np.random.default_rng(0)])


class TestGatherScratch:
    def test_matches_concatenate(self):
        rng = np.random.default_rng(0)
        scratch = GatherScratch()
        blocks = [rng.normal(size=(n, 5)) for n in (7, 1, 12)]
        np.testing.assert_array_equal(
            scratch.gather(blocks), np.concatenate(blocks, axis=0)
        )

    def test_single_block_returned_without_copy(self):
        scratch = GatherScratch()
        block = np.ones((4, 3))
        assert scratch.gather([block]) is block
        assert scratch.grows == 0

    def test_buffer_reused_across_rounds(self):
        rng = np.random.default_rng(1)
        scratch = GatherScratch()
        big = [rng.normal(size=(50, 4)), rng.normal(size=(30, 4))]
        first = scratch.gather(big)
        assert scratch.grows == 1
        # Subsequent smaller rounds reuse the same backing buffer.
        for n in (10, 25, 40):
            blocks = [rng.normal(size=(n, 4)), rng.normal(size=(n, 4))]
            out = scratch.gather(blocks)
            np.testing.assert_array_equal(
                out, np.concatenate(blocks, axis=0)
            )
            assert out.base is first.base
        assert scratch.grows == 1

    def test_growth_is_geometric(self):
        scratch = GatherScratch()
        scratch.gather([np.zeros((10, 2)), np.zeros((10, 2))])
        scratch.gather([np.zeros((15, 2)), np.zeros((10, 2))])
        # Doubling (20 -> 40) covers the next few growth steps at once.
        assert scratch._buf.shape[0] == 40
        scratch.gather([np.zeros((20, 2)), np.zeros((18, 2))])
        assert scratch.grows == 2

    def test_dtype_or_width_change_reallocates(self):
        scratch = GatherScratch()
        scratch.gather([np.zeros((3, 2)), np.zeros((3, 2))])
        out = scratch.gather(
            [np.zeros((2, 5), np.float32), np.zeros((2, 5), np.float32)]
        )
        assert out.dtype == np.float32 and out.shape == (4, 5)
        assert scratch.grows == 2

    def test_empty_input_raises_clear_error(self):
        with pytest.raises(ValueError, match="at least one"):
            GatherScratch().gather([])

    def test_mixed_widths_rejected(self):
        scratch = GatherScratch()
        with pytest.raises(ValueError, match="mixed feature widths"):
            scratch.gather([np.zeros((2, 3)), np.zeros((2, 4))])

    def test_mixed_dtypes_rejected(self):
        scratch = GatherScratch()
        with pytest.raises(ValueError, match="mixed dtypes"):
            scratch.gather(
                [np.zeros((2, 3)), np.zeros((2, 3), np.float32)]
            )

    def test_non_2d_blocks_rejected_even_single(self):
        with pytest.raises(ValueError, match="2D"):
            GatherScratch().gather([np.zeros(4)])
        with pytest.raises(ValueError, match="2D"):
            GatherScratch().gather([np.zeros((2, 3)), np.zeros((2, 3, 1))])


class TestBatchedCampaign:
    def test_event_batch_matches_reference_campaign(
        self, geometry, response, tiny_models
    ):
        from repro.experiments.trials import TrialConfig, run_trials

        ref = run_trials(
            geometry, response, seed=31, n_trials=4,
            config=TrialConfig(condition="ml"), ml_pipeline=tiny_models,
        )
        batched = run_trials(
            geometry, response, seed=31, n_trials=4,
            config=TrialConfig(
                condition="ml", infer_backend="planned", event_batch=2
            ),
            ml_pipeline=tiny_models,
        )
        # Cross-event concatenation may perturb the final ulp; the
        # angular errors must still agree to far below physics precision.
        np.testing.assert_allclose(batched, ref, rtol=0, atol=1e-6)

    def test_ragged_final_block(self, geometry, response, tiny_models):
        from repro.experiments.trials import TrialConfig, run_trials

        # 5 trials in blocks of 2 leaves a final block of 1.
        errors = run_trials(
            geometry, response, seed=37, n_trials=5,
            config=TrialConfig(
                condition="ml", infer_backend="planned", event_batch=2
            ),
            ml_pipeline=tiny_models,
        )
        assert errors.shape == (5,)
