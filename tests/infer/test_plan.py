"""Plan compilation: structure, fusion, folding, and rejection paths."""

import numpy as np
import pytest

from repro.infer.plan import (
    ActivationOp,
    AffineOp,
    LinearOp,
    compile_plan,
)
from repro.nn.layers import (
    BatchNorm1d,
    Dropout,
    Identity,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
)


def _eval_net(*modules):
    net = Sequential(*modules)
    net.eval()
    return net


def _warm_bn(net, rng, width):
    """Run a training pass so BatchNorm running stats are non-trivial."""
    net.train()
    net.forward(rng.normal(size=(64, width)))
    net.eval()
    return net


class TestCompileStructure:
    def test_linear_relu_fuses(self):
        rng = np.random.default_rng(0)
        plan = compile_plan(_eval_net(Linear(4, 8, rng), ReLU()))
        assert len(plan.ops) == 1
        assert isinstance(plan.ops[0], LinearOp)
        assert plan.ops[0].activation == "relu"
        assert plan.in_width == 4 and plan.out_width == 8

    def test_linear_sigmoid_fuses(self):
        rng = np.random.default_rng(0)
        plan = compile_plan(_eval_net(Linear(4, 1, rng), Sigmoid()))
        assert plan.ops[0].activation == "sigmoid"

    def test_batchnorm_becomes_affine(self):
        rng = np.random.default_rng(1)
        net = _warm_bn(
            Sequential(BatchNorm1d(4), Linear(4, 2, rng)), rng, 4
        )
        plan = compile_plan(net, dtype=np.float64)
        assert isinstance(plan.ops[0], AffineOp)
        assert isinstance(plan.ops[1], LinearOp)
        bn = net[0]
        np.testing.assert_array_equal(plan.ops[0].mean, bn.running_mean)
        np.testing.assert_array_equal(
            plan.ops[0].inv_std, 1.0 / np.sqrt(bn.running_var + bn.eps)
        )

    def test_relu_after_affine_fuses_into_affine(self):
        rng = np.random.default_rng(2)
        net = _warm_bn(Sequential(BatchNorm1d(3), ReLU()), rng, 3)
        plan = compile_plan(net)
        assert len(plan.ops) == 1
        assert isinstance(plan.ops[0], AffineOp)
        assert plan.ops[0].activation == "relu"

    def test_unfusable_activation_standalone(self):
        rng = np.random.default_rng(3)
        # Two activations in a row: the second cannot fuse (slot taken).
        plan = compile_plan(_eval_net(Linear(4, 4, rng), ReLU(), Sigmoid()))
        assert len(plan.ops) == 2
        assert isinstance(plan.ops[1], ActivationOp)
        assert plan.ops[1].activation == "sigmoid"
        assert plan.ops[1].width == 4

    def test_dropout_and_identity_skipped(self):
        rng = np.random.default_rng(4)
        plan = compile_plan(
            _eval_net(
                Dropout(0.5, rng=rng),
                Linear(4, 4, rng),
                Identity(),
                ReLU(),
                Dropout(0.2, rng=rng),
                Linear(4, 1, rng),
            )
        )
        assert len(plan.ops) == 2
        assert all(isinstance(op, LinearOp) for op in plan.ops)

    def test_nested_sequential_flattens(self):
        rng = np.random.default_rng(5)
        inner = Sequential(Linear(4, 8, rng), ReLU())
        plan = compile_plan(_eval_net(inner, Linear(8, 1, rng)))
        assert len(plan.ops) == 2
        assert plan.in_width == 4 and plan.out_width == 1

    def test_layer_widths_match_paper_view(self):
        rng = np.random.default_rng(6)
        plan = compile_plan(
            _eval_net(
                Linear(13, 32, rng), ReLU(),
                Linear(32, 16, rng), ReLU(),
                Linear(16, 1, rng),
            )
        )
        assert plan.layer_widths == (13, 32, 16, 1)

    def test_parameters_copied_not_aliased(self):
        rng = np.random.default_rng(7)
        net = _eval_net(Linear(4, 2, rng))
        plan = compile_plan(net)
        x = rng.normal(size=(5, 4))
        before = plan.run(x)
        net[0].weight.value += 1.0  # later training must not leak in
        np.testing.assert_array_equal(plan.run(x), before)


class TestCompileRejections:
    def test_training_mode_rejected(self):
        rng = np.random.default_rng(0)
        net = Sequential(Linear(4, 2, rng))
        net.train()
        with pytest.raises(ValueError, match="eval"):
            compile_plan(net)

    def test_unknown_layer_rejected(self):
        from repro.nn.layers import Module

        class Strange(Module):
            def forward(self, x):
                return x

        with pytest.raises(ValueError, match="cannot compile"):
            compile_plan(_eval_net(Strange()))

    def test_width_mismatch_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError, match="mismatch"):
            compile_plan(_eval_net(Linear(4, 8, rng), Linear(4, 2, rng)))

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            compile_plan(_eval_net(Identity()))


class TestBatchNormFolding:
    def _net(self, seed, swapped):
        rng = np.random.default_rng(seed)
        if swapped:  # Linear -> BN -> ReLU (fusion-friendly order)
            mods = [Linear(6, 12, rng), BatchNorm1d(12), ReLU(),
                    Linear(12, 1, rng)]
        else:  # BN -> Linear -> ReLU (the paper's default order)
            mods = [BatchNorm1d(6), Linear(6, 12, rng), ReLU(),
                    Linear(12, 1, rng)]
        net = Sequential(*mods)
        return _warm_bn(net, rng, 6), rng

    @pytest.mark.parametrize("swapped", [False, True])
    def test_folded_matches_unfolded_to_ulp(self, swapped):
        net, rng = self._net(11, swapped)
        x = rng.normal(size=(200, 6))
        plain = compile_plan(net, dtype=np.float64)
        folded = compile_plan(net, fold_batchnorm=True, dtype=np.float64)
        assert len(folded.ops) < len(plain.ops)
        assert not any(isinstance(op, AffineOp) for op in folded.ops)
        np.testing.assert_allclose(
            folded.run(x), plain.run(x), rtol=1e-10, atol=1e-12
        )

    def test_folding_preserves_layer_widths(self):
        net, _ = self._net(12, True)
        plain = compile_plan(net)
        folded = compile_plan(net, fold_batchnorm=True)
        assert folded.layer_widths == plain.layer_widths


class TestFloat32Plans:
    def test_float32_is_default_plan_dtype(self):
        from repro.infer import DEFAULT_PLAN_DTYPE

        rng = np.random.default_rng(20)
        net = _eval_net(Linear(4, 8, rng), ReLU())
        assert DEFAULT_PLAN_DTYPE == np.float32
        plan = compile_plan(net)
        assert plan.dtype == np.float32
        assert plan.run(rng.normal(size=(5, 4))).dtype == np.float32

    def test_float32_close_to_float64(self):
        rng = np.random.default_rng(21)
        net = _eval_net(
            Linear(8, 16, rng), ReLU(), Linear(16, 1, rng)
        )
        x = rng.normal(size=(64, 8))
        p64 = compile_plan(net, dtype=np.float64)
        p32 = compile_plan(net, dtype=np.float32)
        assert p32.run(x).dtype == np.float32
        np.testing.assert_allclose(
            p32.run(x).astype(np.float64), p64.run(x), rtol=1e-5, atol=1e-6
        )


class TestFusedActivationKernels:
    """The fast fused activations are bitwise-equal to the eager layers,
    including the NaN and signed-zero edge cases the fast formulations
    could plausibly get wrong (``fmax`` NaN preference; ``exp(-|y|)``
    branch merge)."""

    def _edge_array(self, dtype):
        rng = np.random.default_rng(22)
        y = (rng.normal(size=(97, 33)) * 30.0).astype(dtype)
        y.flat[::11] = np.nan
        y.flat[::13] = -0.0
        y.flat[::17] = 0.0
        return y

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_relu_bitwise_matches_eager_where_form(self, dtype):
        from repro.infer.plan import _apply_activation_inplace

        y = self._edge_array(dtype)
        eager = ReLU().forward(y).astype(dtype)
        fused = _apply_activation_inplace(y.copy(), "relu")
        itype = np.uint32 if dtype == np.float32 else np.uint64
        np.testing.assert_array_equal(
            eager.view(itype), fused.view(itype)
        )
        assert not np.isnan(fused).any()  # NaN rows map to 0.0

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_sigmoid_matches_eager_two_branch_form(self, dtype):
        from repro.infer.plan import _apply_activation_inplace

        y = self._edge_array(dtype)
        eager = Sigmoid().forward(y).astype(dtype)
        fused = _apply_activation_inplace(y.copy(), "sigmoid")
        nan = np.isnan(y)
        np.testing.assert_array_equal(np.isnan(fused), nan)
        itype = np.uint32 if dtype == np.float32 else np.uint64
        np.testing.assert_array_equal(
            eager[~nan].view(itype), fused[~nan].view(itype)
        )
