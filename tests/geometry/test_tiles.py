"""Tests for the slab-stack detector geometry."""

import numpy as np
import pytest

from repro import constants
from repro.geometry.tiles import DetectorGeometry, Layer, adapt_geometry


class TestLayer:
    def test_thickness(self):
        layer = Layer(z_top=0.0, z_bottom=-1.5, half_size=20.0, material=constants.CSI)
        assert layer.thickness == pytest.approx(1.5)

    def test_contains_z_inside(self):
        layer = Layer(z_top=0.0, z_bottom=-1.5, half_size=20.0, material=constants.CSI)
        assert layer.contains_z(np.array([-0.5]))[0]

    def test_contains_z_boundaries_inclusive(self):
        layer = Layer(z_top=0.0, z_bottom=-1.5, half_size=20.0, material=constants.CSI)
        assert layer.contains_z(np.array([0.0]))[0]
        assert layer.contains_z(np.array([-1.5]))[0]

    def test_contains_z_outside(self):
        layer = Layer(z_top=0.0, z_bottom=-1.5, half_size=20.0, material=constants.CSI)
        assert not layer.contains_z(np.array([0.1]))[0]
        assert not layer.contains_z(np.array([-1.6]))[0]


class TestAdaptGeometry:
    def test_default_layer_count(self, geometry):
        assert geometry.num_layers == constants.ADAPT_NUM_LAYERS

    def test_top_at_origin(self, geometry):
        assert geometry.z_top == pytest.approx(0.0)

    def test_height_includes_gaps(self, geometry):
        expected = (
            constants.ADAPT_NUM_LAYERS * constants.ADAPT_TILE_THICKNESS_CM
            + (constants.ADAPT_NUM_LAYERS - 1) * constants.ADAPT_LAYER_GAP_CM
        )
        assert geometry.height == pytest.approx(expected)

    def test_layers_do_not_overlap(self, geometry):
        for upper, lower in zip(geometry.layers[:-1], geometry.layers[1:]):
            assert upper.z_bottom > lower.z_top

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            adapt_geometry(num_layers=0)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            adapt_geometry(tile_thickness_cm=-1.0)

    def test_single_layer(self):
        geo = adapt_geometry(num_layers=1)
        assert geo.num_layers == 1
        assert geo.height == pytest.approx(constants.ADAPT_TILE_THICKNESS_CM)


class TestLayerIndex:
    def test_point_in_first_layer(self, geometry):
        idx = geometry.layer_index(np.array([[0.0, 0.0, -0.5]]))
        assert idx[0] == 0

    def test_point_in_gap(self, geometry):
        # Between layer 0 (bottom -1.5) and layer 1 (top -11.5).
        idx = geometry.layer_index(np.array([[0.0, 0.0, -5.0]]))
        assert idx[0] == -1

    def test_point_outside_laterally(self, geometry):
        idx = geometry.layer_index(np.array([[100.0, 0.0, -0.5]]))
        assert idx[0] == -1

    def test_point_above_detector(self, geometry):
        idx = geometry.layer_index(np.array([[0.0, 0.0, 5.0]]))
        assert idx[0] == -1

    def test_every_layer_reachable(self, geometry):
        for i, layer in enumerate(geometry.layers):
            z = 0.5 * (layer.z_top + layer.z_bottom)
            assert geometry.layer_index(np.array([[0.0, 0.0, z]]))[0] == i

    def test_contains_matches_layer_index(self, geometry):
        rng = np.random.default_rng(0)
        pts = rng.uniform(-30, 10, size=(500, 3))
        assert np.array_equal(
            geometry.contains(pts), geometry.layer_index(pts) >= 0
        )


class TestSegmentIntersections:
    def test_vertical_ray_total_path(self, geometry):
        origin = np.array([[0.0, 0.0, 1.0]])
        direction = np.array([[0.0, 0.0, -1.0]])
        t_in, t_out = geometry.segment_intersections(origin, direction)
        lengths = np.maximum(t_out - np.maximum(t_in, 0.0), 0.0)
        total = lengths.sum()
        expected = geometry.num_layers * constants.ADAPT_TILE_THICKNESS_CM
        assert total == pytest.approx(expected, rel=1e-9)

    def test_miss_detector(self, geometry):
        origin = np.array([[100.0, 100.0, 1.0]])
        direction = np.array([[0.0, 0.0, -1.0]])
        t_in, t_out = geometry.segment_intersections(origin, direction)
        lengths = np.maximum(t_out - np.maximum(t_in, 0.0), 0.0)
        assert lengths.sum() == pytest.approx(0.0)

    def test_oblique_ray_matches_numeric(self, geometry):
        origin = np.array([0.0, 0.0, 1.0])
        direction = np.array([0.3, 0.1, -1.0])
        direction = direction / np.linalg.norm(direction)
        t_in, t_out = geometry.segment_intersections(
            origin[None, :], direction[None, :]
        )
        analytic = np.maximum(t_out - np.maximum(t_in, 0.0), 0.0).sum()
        numeric = geometry.path_length_in_layers(origin, direction, n_steps=20001)
        assert analytic == pytest.approx(numeric, abs=0.05)

    def test_horizontal_ray_through_one_layer(self, geometry):
        layer = geometry.layers[1]
        z = 0.5 * (layer.z_top + layer.z_bottom)
        origin = np.array([[-50.0, 0.0, z]])
        direction = np.array([[1.0, 0.0, 0.0]])
        t_in, t_out = geometry.segment_intersections(origin, direction)
        lengths = np.maximum(t_out - np.maximum(t_in, 0.0), 0.0)
        # Crosses exactly one layer over its full lateral width.
        assert lengths[0, 1] == pytest.approx(2 * layer.half_size)
        assert lengths[0, 0] == pytest.approx(0.0)

    def test_ray_starting_inside_layer(self, geometry):
        layer = geometry.layers[0]
        z = 0.5 * (layer.z_top + layer.z_bottom)
        origin = np.array([[0.0, 0.0, z]])
        direction = np.array([[0.0, 0.0, -1.0]])
        t_in, t_out = geometry.segment_intersections(origin, direction)
        lengths = np.maximum(t_out - np.maximum(t_in, 0.0), 0.0)
        # Half the first layer remains ahead.
        assert lengths[0, 0] == pytest.approx(layer.thickness / 2.0, rel=1e-6)

    def test_upward_ray_exits_without_material(self, geometry):
        origin = np.array([[0.0, 0.0, 1.0]])
        direction = np.array([[0.0, 0.0, 1.0]])
        t_in, t_out = geometry.segment_intersections(origin, direction)
        lengths = np.maximum(t_out - np.maximum(t_in, 0.0), 0.0)
        assert lengths.sum() == pytest.approx(0.0)
