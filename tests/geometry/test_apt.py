"""Tests for the full APT instrument geometry."""

import numpy as np
import pytest

from repro import constants
from repro.geometry.tiles import adapt_geometry, apt_geometry


class TestAptGeometry:
    def test_layer_count(self):
        geo = apt_geometry()
        assert geo.num_layers == constants.APT_NUM_LAYERS

    def test_much_larger_aperture(self):
        apt = apt_geometry()
        adapt = adapt_geometry()
        area_ratio = (apt.half_size / adapt.half_size) ** 2
        assert area_ratio > 5.0

    def test_deeper_stack(self):
        apt = apt_geometry()
        adapt = adapt_geometry()
        apt_depth = sum(l.thickness for l in apt.layers)
        adapt_depth = sum(l.thickness for l in adapt.layers)
        assert apt_depth > 3.0 * adapt_depth

    def test_higher_detection_efficiency(self):
        """The deeper stack stops a larger fraction of 1 MeV photons."""
        from repro.physics.transport import transport_photons

        results = {}
        for name, geo in [("adapt", adapt_geometry()), ("apt", apt_geometry())]:
            rng = np.random.default_rng(0)
            n = 4000
            half = geo.half_size * 0.5
            origins = np.stack(
                [
                    rng.uniform(-half, half, n),
                    rng.uniform(-half, half, n),
                    np.full(n, 1.0),
                ],
                axis=1,
            )
            dirs = np.tile([0.0, 0.0, -1.0], (n, 1))
            res = transport_photons(geo, origins, dirs, np.full(n, 1.0), rng)
            results[name] = (res.num_interactions > 0).mean()
        # ADAPT's 6 cm of CsI already stops ~80% at 1 MeV; APT's 30 cm is
        # essentially opaque.
        assert results["apt"] > results["adapt"]
        assert results["apt"] > 0.95

    def test_more_grb_rings_per_fluence(self, response):
        """APT collects far more usable rings from the same burst."""
        from repro.detector.response import DetectorResponse
        from repro.localization.pipeline import prepare_rings
        from repro.sources.exposure import simulate_exposure
        from repro.sources.grb import GRBSource

        counts = {}
        for name, geo in [("adapt", adapt_geometry()), ("apt", apt_geometry())]:
            resp = DetectorResponse(geo)
            rng = np.random.default_rng(1)
            exp = simulate_exposure(
                geo, rng, GRBSource(fluence_mev_cm2=0.3)
            )
            ev = resp.digitize(exp.transport, exp.batch, rng, min_hits=2)
            counts[name] = prepare_rings(ev).num_rings
        assert counts["apt"] > 5.0 * counts["adapt"]
