"""Tests for WLS fiber position quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.fibers import FiberGrid, quantize_positions


class TestFiberGrid:
    def test_num_fibers(self):
        grid = FiberGrid(pitch_cm=0.5, half_size_cm=10.0)
        assert grid.num_fibers == 40

    def test_invalid_pitch(self):
        with pytest.raises(ValueError):
            FiberGrid(pitch_cm=0.0)

    def test_invalid_half_size(self):
        with pytest.raises(ValueError):
            FiberGrid(pitch_cm=0.3, half_size_cm=-1.0)

    def test_fiber_center_round_trip(self):
        grid = FiberGrid(pitch_cm=0.3, half_size_cm=20.0)
        for idx in [0, 1, 50, grid.num_fibers - 1]:
            center = grid.fiber_center(np.array([idx]))
            assert grid.fiber_index(center)[0] == idx

    def test_quantize_at_center_is_identity(self):
        grid = FiberGrid(pitch_cm=0.3, half_size_cm=20.0)
        centers = grid.fiber_center(np.arange(grid.num_fibers))
        assert np.allclose(grid.quantize(centers), centers)

    def test_out_of_range_clipped(self):
        grid = FiberGrid(pitch_cm=0.3, half_size_cm=20.0)
        assert grid.fiber_index(np.array([100.0]))[0] == grid.num_fibers - 1
        assert grid.fiber_index(np.array([-100.0]))[0] == 0

    def test_position_sigma(self):
        grid = FiberGrid(pitch_cm=0.3)
        assert grid.position_sigma_cm == pytest.approx(0.3 / np.sqrt(12))

    @given(st.floats(min_value=-19.9, max_value=19.9))
    @settings(max_examples=50)
    def test_quantization_error_bounded(self, coord):
        grid = FiberGrid(pitch_cm=0.3, half_size_cm=20.0)
        q = grid.quantize(np.array([coord]))[0]
        assert abs(q - coord) <= 0.3 / 2 + 1e-9

    @given(st.floats(min_value=-19.9, max_value=19.9))
    @settings(max_examples=50)
    def test_quantize_idempotent(self, coord):
        grid = FiberGrid(pitch_cm=0.3, half_size_cm=20.0)
        once = grid.quantize(np.array([coord]))
        twice = grid.quantize(once)
        assert np.allclose(once, twice)


class TestQuantizePositions:
    def test_z_unchanged(self):
        grid = FiberGrid()
        pos = np.array([[1.234, -5.678, -0.77]])
        out = quantize_positions(pos, grid)
        assert out[0, 2] == pos[0, 2]

    def test_xy_quantized(self):
        grid = FiberGrid()
        pos = np.array([[1.234, -5.678, -0.77]])
        out = quantize_positions(pos, grid)
        assert out[0, 0] == grid.quantize(np.array([1.234]))[0]
        assert out[0, 1] == grid.quantize(np.array([-5.678]))[0]

    def test_input_not_mutated(self):
        grid = FiberGrid()
        pos = np.array([[1.234, -5.678, -0.77]])
        original = pos.copy()
        quantize_positions(pos, grid)
        assert np.array_equal(pos, original)
