"""Tests for NN layers, including numeric gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm1d,
    Dropout,
    Identity,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
)
from repro.nn.losses import MSELoss


def numeric_gradient_check(model, x, y, tol=1e-5, samples=6):
    """Compare analytic parameter gradients against central differences."""
    loss = MSELoss()
    model.train()
    model.zero_grad()
    value, grad = loss(model.forward(x), y)
    model.backward(grad)
    eps = 1e-6
    rng = np.random.default_rng(0)
    for p in model.parameters():
        flat = p.value.reshape(-1)
        grad_flat = p.grad.reshape(-1)
        idx = rng.choice(flat.size, size=min(samples, flat.size), replace=False)
        for i in idx:
            orig = flat[i]
            flat[i] = orig + eps
            v1, _ = loss(model.forward(x), y)
            flat[i] = orig - eps
            v2, _ = loss(model.forward(x), y)
            flat[i] = orig
            num = (v1 - v2) / (2 * eps)
            denom = max(abs(num), abs(grad_flat[i]), 1e-8)
            assert abs(num - grad_flat[i]) / denom < tol


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 7)
        out = layer.forward(np.zeros((3, 4)))
        assert out.shape == (3, 7)

    def test_forward_math(self):
        layer = Linear(2, 2)
        layer.weight.value[...] = [[1.0, 2.0], [3.0, 4.0]]
        layer.bias.value[...] = [0.5, -0.5]
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert np.allclose(out, [[4.5, 5.5]])

    def test_gradients(self):
        rng = np.random.default_rng(1)
        model = Sequential(Linear(5, 3, rng))
        numeric_gradient_check(
            model, rng.normal(size=(8, 5)), rng.normal(size=(8, 3))
        )

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2).backward(np.zeros((1, 2)))


class TestBatchNorm:
    def test_normalizes_in_training(self):
        rng = np.random.default_rng(2)
        bn = BatchNorm1d(4)
        bn.train()
        x = rng.normal(3.0, 2.0, size=(256, 4))
        out = bn.forward(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_converge(self):
        rng = np.random.default_rng(3)
        bn = BatchNorm1d(2, momentum=0.5)
        bn.train()
        for _ in range(50):
            bn.forward(rng.normal(5.0, 1.0, size=(512, 2)))
        assert np.allclose(bn.running_mean, 5.0, atol=0.2)
        assert np.allclose(bn.running_var, 1.0, atol=0.2)

    def test_eval_uses_running_stats(self):
        rng = np.random.default_rng(4)
        bn = BatchNorm1d(2, momentum=1.0)
        bn.train()
        bn.forward(rng.normal(5.0, 1.0, size=(4096, 2)))
        bn.eval()
        out = bn.forward(np.full((3, 2), 5.0))
        assert np.allclose(out, 0.0, atol=0.1)

    def test_gradients_training_mode(self):
        rng = np.random.default_rng(5)
        model = Sequential(BatchNorm1d(4), Linear(4, 2, rng))
        numeric_gradient_check(
            model, rng.normal(size=(16, 4)), rng.normal(size=(16, 2))
        )

    def test_gamma_beta_affine(self):
        bn = BatchNorm1d(2)
        bn.gamma.value[...] = [2.0, 3.0]
        bn.beta.value[...] = [1.0, -1.0]
        bn.train()
        rng = np.random.default_rng(6)
        out = bn.forward(rng.normal(size=(512, 2)))
        assert np.allclose(out.mean(axis=0), [1.0, -1.0], atol=1e-9)
        assert np.allclose(out.std(axis=0), [2.0, 3.0], atol=0.02)


class TestActivations:
    def test_relu_forward(self):
        r = ReLU()
        out = r.forward(np.array([[-1.0, 0.0, 2.0]]))
        assert np.allclose(out, [[0.0, 0.0, 2.0]])

    def test_relu_backward_mask(self):
        r = ReLU()
        r.forward(np.array([[-1.0, 0.5]]))
        grad = r.backward(np.array([[1.0, 1.0]]))
        assert np.allclose(grad, [[0.0, 1.0]])

    def test_sigmoid_range_and_stability(self):
        s = Sigmoid()
        out = s.forward(np.array([[-1000.0, 0.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(0.5)
        assert out[0, 2] == pytest.approx(1.0)

    def test_sigmoid_gradient(self):
        rng = np.random.default_rng(7)
        model = Sequential(Linear(3, 2, rng), Sigmoid())
        numeric_gradient_check(
            model, rng.normal(size=(8, 3)), rng.uniform(size=(8, 2))
        )


class TestDropout:
    def test_eval_is_identity(self):
        d = Dropout(0.5)
        d.eval()
        x = np.ones((4, 4))
        assert np.array_equal(d.forward(x), x)

    def test_training_preserves_expectation(self):
        d = Dropout(0.5, rng=np.random.default_rng(8))
        d.train()
        x = np.ones((200, 200))
        out = d.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_eval_only_dropout_never_warns_or_mints_rng(self):
        """Regression: an eval-only Dropout (e.g. in a loaded inference
        model) used to mint a fallback generator in ``__init__`` and emit
        MissingRngWarning even though eval mode never draws from it."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning -> test failure
            d = Dropout(0.5)
            d.eval()
            d.forward(np.ones((8, 3)))
        assert d._rng is None  # still unminted: eval never touched it

    def test_eval_forward_consumes_no_rng_draws(self):
        rng = np.random.default_rng(11)
        d = Dropout(0.5, rng=rng)
        d.eval()
        state_before = rng.bit_generator.state
        d.forward(np.ones((16, 4)))
        assert rng.bit_generator.state == state_before

    def test_training_forward_mints_lazily(self):
        d = Dropout(0.5)
        assert d._rng is None
        d.train()
        with pytest.warns(Warning):
            d.forward(np.ones((4, 4)))  # first draw mints (and warns)
        assert d._rng is not None


class TestSequential:
    def test_train_eval_propagates(self):
        model = Sequential(BatchNorm1d(2), Identity(), ReLU())
        model.eval()
        assert all(not m.training for m in model)
        model.train()
        assert all(m.training for m in model)

    def test_deep_gradient_check(self):
        rng = np.random.default_rng(9)
        model = Sequential(
            BatchNorm1d(6),
            Linear(6, 8, rng),
            ReLU(),
            BatchNorm1d(8),
            Linear(8, 4, rng),
            ReLU(),
            Linear(4, 1, rng),
        )
        numeric_gradient_check(
            model, rng.normal(size=(32, 6)), rng.normal(size=(32, 1))
        )

    def test_parameter_collection(self):
        model = Sequential(BatchNorm1d(3), Linear(3, 2), Linear(2, 1))
        assert len(model.parameters()) == 6  # 2 BN + 2x2 Linear

    def test_indexing(self):
        lin = Linear(3, 2)
        model = Sequential(lin, ReLU())
        assert model[0] is lin
        assert len(model) == 2
