"""Tests for LR schedulers, gradient clipping, and the extra losses."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Parameter, Sequential
from repro.nn.losses import HuberLoss, L1Loss, MSELoss
from repro.nn.optim import SGD
from repro.nn.schedulers import CosineAnnealingLR, StepLR, clip_gradients
from repro.nn.train import Trainer


def make_opt(lr=0.1):
    p = Parameter(np.zeros(3))
    return SGD([p], lr=lr), p


class TestStepLR:
    def test_decay_schedule(self):
        opt, _ = make_opt(0.1)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(6):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([0.1, 0.05, 0.05, 0.025, 0.025, 0.0125])

    def test_invalid_args(self):
        opt, _ = make_opt()
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=1, gamma=0.0)


class TestCosine:
    def test_endpoints(self):
        opt, _ = make_opt(0.1)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.001)
        assert sched.lr_at(0) == pytest.approx(0.1)
        assert sched.lr_at(10) == pytest.approx(0.001)
        assert sched.lr_at(5) == pytest.approx((0.1 + 0.001) / 2)

    def test_monotone_decreasing(self):
        opt, _ = make_opt(0.1)
        sched = CosineAnnealingLR(opt, t_max=20)
        lrs = [sched.lr_at(e) for e in range(21)]
        assert all(b <= a + 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_holds_after_t_max(self):
        opt, _ = make_opt(0.1)
        sched = CosineAnnealingLR(opt, t_max=5, eta_min=0.01)
        assert sched.lr_at(50) == pytest.approx(0.01)


class TestClipGradients:
    def test_no_clip_below_ceiling(self):
        p = Parameter(np.zeros(2))
        p.grad[...] = [0.3, 0.4]  # norm 0.5
        norm = clip_gradients([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_clips_to_ceiling(self):
        p = Parameter(np.zeros(2))
        p.grad[...] = [3.0, 4.0]  # norm 5
        clip_gradients([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_global_norm_across_params(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad[...] = [3.0]
        b.grad[...] = [4.0]
        norm = clip_gradients([a, b], max_norm=2.5)
        assert norm == pytest.approx(5.0)
        assert np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2) == pytest.approx(2.5)

    def test_invalid_ceiling(self):
        with pytest.raises(ValueError):
            clip_gradients([Parameter(np.zeros(1))], max_norm=0.0)


class TestExtraLosses:
    def test_l1_value_and_grad(self):
        v, g = L1Loss()(np.array([[2.0, -1.0]]), np.array([[0.0, 0.0]]))
        assert v == pytest.approx(1.5)
        assert np.allclose(g, [[0.5, -0.5]])

    def test_huber_quadratic_region_matches_mse_shape(self):
        pred = np.array([[0.3]])
        target = np.array([[0.0]])
        v_h, g_h = HuberLoss(delta=1.0)(pred, target)
        assert v_h == pytest.approx(0.5 * 0.09)
        assert g_h[0, 0] == pytest.approx(0.3)

    def test_huber_linear_region_bounded_grad(self):
        v, g = HuberLoss(delta=1.0)(np.array([[10.0]]), np.array([[0.0]]))
        assert g[0, 0] == pytest.approx(1.0)
        assert v == pytest.approx(10.0 - 0.5)

    def test_huber_outlier_resistance(self):
        """Huber total loss grows linearly with an outlier; MSE quadratically."""
        base = np.zeros((10, 1))
        target = np.zeros((10, 1))
        for out in (10.0, 20.0):
            pred = base.copy()
            pred[0, 0] = out
            h, _ = HuberLoss(delta=1.0)(pred, target)
            m, _ = MSELoss()(pred, target)
            assert h < m

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)


class TestTrainerIntegration:
    def test_scheduler_steps_per_epoch(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(3, 1, rng))
        opt = SGD(model.parameters(), lr=0.1)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        trainer = Trainer(
            model, MSELoss(), opt, batch_size=16, max_epochs=3, patience=10,
            scheduler=sched,
        )
        x = rng.normal(size=(64, 3))
        y = x[:, :1]
        trainer.fit(x[:48], y[:48], x[48:], y[48:], rng)
        assert opt.lr == pytest.approx(0.1 * 0.5**3)

    def test_grad_clipping_enabled(self):
        rng = np.random.default_rng(1)
        model = Sequential(Linear(3, 1, rng))
        opt = SGD(model.parameters(), lr=0.1)
        trainer = Trainer(
            model, MSELoss(), opt, batch_size=16, max_epochs=2, patience=10,
            grad_clip_norm=1e-6,
        )
        x = rng.normal(size=(64, 3))
        y = 100.0 * x[:, :1]
        before = [p.value.copy() for p in model.parameters()]
        trainer.fit(x[:48], y[:48], x[48:], y[48:], rng)
        # With a tiny clip ceiling, parameters barely move.
        for b, p in zip(before, model.parameters()):
            assert np.abs(p.value - b).max() < 1e-3
