"""Tests for the training loop."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.losses import MSELoss
from repro.nn.optim import SGD
from repro.nn.train import Trainer


def linear_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    w = np.array([[1.0], [-2.0], [0.5]])
    y = x @ w + 0.01 * rng.normal(size=(n, 1))
    return x[:300], y[:300], x[300:], y[300:]


class TestTrainer:
    def test_loss_decreases(self):
        xt, yt, xv, yv = linear_data()
        model = Sequential(Linear(3, 1, np.random.default_rng(1)))
        trainer = Trainer(
            model, MSELoss(), SGD(model.parameters(), lr=0.05),
            batch_size=32, max_epochs=30, patience=30,
        )
        hist = trainer.fit(xt, yt, xv, yv, np.random.default_rng(2))
        assert hist.train_loss[-1] < hist.train_loss[0]
        assert hist.val_loss[-1] < 0.01

    def test_early_stopping(self):
        xt, yt, xv, yv = linear_data()
        model = Sequential(Linear(3, 1, np.random.default_rng(3)))
        trainer = Trainer(
            model, MSELoss(), SGD(model.parameters(), lr=0.1),
            batch_size=32, max_epochs=200, patience=5,
        )
        hist = trainer.fit(xt, yt, xv, yv, np.random.default_rng(4))
        assert hist.stopped_early
        assert hist.num_epochs < 200

    def test_best_params_restored(self):
        """After training, the model's validation loss equals the best
        recorded value (not the last epoch's)."""
        xt, yt, xv, yv = linear_data()
        model = Sequential(Linear(3, 1, np.random.default_rng(5)))
        trainer = Trainer(
            model, MSELoss(), SGD(model.parameters(), lr=0.1),
            batch_size=32, max_epochs=60, patience=8,
        )
        hist = trainer.fit(xt, yt, xv, yv, np.random.default_rng(6))
        final = trainer.evaluate(xv, yv)
        # Best-epoch snapshots only fire on > min_delta improvements, so
        # the restored loss may trail the true minimum by up to min_delta.
        assert final <= min(hist.val_loss) + trainer.min_delta + 1e-12

    def test_model_left_in_eval_mode(self):
        xt, yt, xv, yv = linear_data()
        model = Sequential(Linear(3, 1), ReLU(), Linear(1, 1))
        trainer = Trainer(
            model, MSELoss(), SGD(model.parameters(), lr=0.01),
            batch_size=64, max_epochs=2, patience=2,
        )
        trainer.fit(xt, yt, xv, yv, np.random.default_rng(7))
        assert not model.training

    def test_history_lengths_match(self):
        xt, yt, xv, yv = linear_data()
        model = Sequential(Linear(3, 1))
        trainer = Trainer(
            model, MSELoss(), SGD(model.parameters(), lr=0.05),
            batch_size=64, max_epochs=10, patience=10,
        )
        hist = trainer.fit(xt, yt, xv, yv, np.random.default_rng(8))
        assert len(hist.train_loss) == len(hist.val_loss)
        assert 0 <= hist.best_epoch < hist.num_epochs
