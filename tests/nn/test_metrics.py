"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.nn.metrics import binary_accuracy, confusion_counts, r2_score, roc_auc


class TestBinaryAccuracy:
    def test_perfect(self):
        assert binary_accuracy(np.array([0.9, 0.1]), np.array([1, 0])) == 1.0

    def test_half(self):
        assert binary_accuracy(np.array([0.9, 0.9]), np.array([1, 0])) == 0.5

    def test_threshold(self):
        p = np.array([0.4, 0.6])
        y = np.array([1, 1])
        assert binary_accuracy(p, y, threshold=0.3) == 1.0
        assert binary_accuracy(p, y, threshold=0.7) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            binary_accuracy(np.array([]), np.array([]))


class TestConfusion:
    def test_counts(self):
        p = np.array([0.9, 0.8, 0.2, 0.1])
        y = np.array([1, 0, 1, 0])
        c = confusion_counts(p, y)
        assert c == {"tp": 1, "fp": 1, "tn": 1, "fn": 1}

    def test_sums_to_n(self):
        rng = np.random.default_rng(0)
        p = rng.uniform(size=100)
        y = rng.integers(0, 2, 100)
        c = confusion_counts(p, y)
        assert sum(c.values()) == 100


class TestRocAuc:
    def test_perfect_separation(self):
        p = np.array([0.1, 0.2, 0.8, 0.9])
        y = np.array([0, 0, 1, 1])
        assert roc_auc(p, y) == 1.0

    def test_inverted(self):
        p = np.array([0.9, 0.8, 0.2, 0.1])
        y = np.array([0, 0, 1, 1])
        assert roc_auc(p, y) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(1)
        p = rng.uniform(size=10000)
        y = rng.integers(0, 2, 10000)
        assert roc_auc(p, y) == pytest.approx(0.5, abs=0.02)

    def test_ties_midranked(self):
        p = np.array([0.5, 0.5, 0.5, 0.5])
        y = np.array([1, 0, 1, 0])
        assert roc_auc(p, y) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.5, 0.6]), np.array([1, 1]))

    def test_matches_pair_counting(self):
        rng = np.random.default_rng(2)
        p = rng.uniform(size=60)
        y = rng.integers(0, 2, 60)
        pos, neg = p[y == 1], p[y == 0]
        wins = sum((pp > nn) + 0.5 * (pp == nn) for pp in pos for nn in neg)
        expected = wins / (pos.size * neg.size)
        assert roc_auc(p, y) == pytest.approx(expected, rel=1e-9)


class TestR2:
    def test_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(np.full(3, 2.0), y) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(np.array([3.0, 2.0, 1.0]), y) < 0.0

    def test_constant_target(self):
        assert r2_score(np.array([1.0, 1.0]), np.array([1.0, 1.0])) == 1.0
        assert r2_score(np.array([1.0, 2.0]), np.array([1.0, 1.0])) == 0.0
