"""Tests for model (de)serialization."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm1d, Linear, ReLU, Sequential
from repro.nn.serialize import load_model_params, save_model_params


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        BatchNorm1d(4), Linear(4, 8, rng), ReLU(), Linear(8, 1, rng)
    )


class TestSerialize:
    def test_round_trip(self, tmp_path):
        model = make_model(1)
        # Push data through to move BN running stats off their defaults.
        model.train()
        model.forward(np.random.default_rng(2).normal(2.0, 3.0, size=(64, 4)))
        model.eval()
        x = np.random.default_rng(3).normal(size=(5, 4))
        expected = model.forward(x)

        path = tmp_path / "model.npz"
        save_model_params(model, path)
        fresh = make_model(99)  # different init
        load_model_params(fresh, path)
        fresh.eval()
        assert np.allclose(fresh.forward(x), expected)

    def test_parameter_count_mismatch(self, tmp_path):
        path = tmp_path / "m.npz"
        save_model_params(make_model(), path)
        other = Sequential(Linear(4, 1))
        with pytest.raises(ValueError):
            load_model_params(other, path)

    def test_shape_mismatch(self, tmp_path):
        path = tmp_path / "m.npz"
        save_model_params(Sequential(Linear(4, 2)), path)
        other = Sequential(Linear(4, 3))
        with pytest.raises(ValueError):
            load_model_params(other, path)

    def test_batchnorm_stats_preserved(self, tmp_path):
        model = make_model(4)
        model.train()
        model.forward(np.random.default_rng(5).normal(7.0, 1.0, size=(256, 4)))
        path = tmp_path / "m.npz"
        save_model_params(model, path)
        fresh = make_model(6)
        load_model_params(fresh, path)
        bn_orig = model[0]
        bn_new = fresh[0]
        assert np.allclose(bn_new.running_mean, bn_orig.running_mean)
        assert np.allclose(bn_new.running_var, bn_orig.running_var)
