"""Tests for model (de)serialization."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm1d, Linear, Module, ReLU, Sequential
from repro.nn.serialize import (
    _walk_batchnorms,
    load_model_params,
    save_model_params,
)


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        BatchNorm1d(4), Linear(4, 8, rng), ReLU(), Linear(8, 1, rng)
    )


class ResidualBlock(Module):
    """A non-Sequential container: children live in plain attributes and
    a list — the shapes the old Sequential-only walk missed entirely."""

    def __init__(self, seed):
        rng = np.random.default_rng(seed)
        self.norm = BatchNorm1d(4)
        self.branches = [Linear(4, 4, rng), ReLU()]
        self.head = Sequential(Linear(4, 1, rng), BatchNorm1d(1))

    def forward(self, x):
        h = self.norm.forward(x)
        for m in self.branches:
            h = m.forward(h)
        return self.head.forward(h)

    def parameters(self):
        out = self.norm.parameters()
        for m in self.branches:
            out.extend(m.parameters())
        out.extend(self.head.parameters())
        return out


class TestSerialize:
    def test_round_trip(self, tmp_path):
        model = make_model(1)
        # Push data through to move BN running stats off their defaults.
        model.train()
        model.forward(np.random.default_rng(2).normal(2.0, 3.0, size=(64, 4)))
        model.eval()
        x = np.random.default_rng(3).normal(size=(5, 4))
        expected = model.forward(x)

        path = tmp_path / "model.npz"
        save_model_params(model, path)
        fresh = make_model(99)  # different init
        load_model_params(fresh, path)
        fresh.eval()
        assert np.allclose(fresh.forward(x), expected)

    def test_parameter_count_mismatch(self, tmp_path):
        path = tmp_path / "m.npz"
        save_model_params(make_model(), path)
        other = Sequential(Linear(4, 1))
        with pytest.raises(ValueError):
            load_model_params(other, path)

    def test_shape_mismatch(self, tmp_path):
        path = tmp_path / "m.npz"
        save_model_params(Sequential(Linear(4, 2)), path)
        other = Sequential(Linear(4, 3))
        with pytest.raises(ValueError):
            load_model_params(other, path)

    def test_batchnorm_stats_preserved(self, tmp_path):
        model = make_model(4)
        model.train()
        model.forward(np.random.default_rng(5).normal(7.0, 1.0, size=(256, 4)))
        path = tmp_path / "m.npz"
        save_model_params(model, path)
        fresh = make_model(6)
        load_model_params(fresh, path)
        bn_orig = model[0]
        bn_new = fresh[0]
        assert np.allclose(bn_new.running_mean, bn_orig.running_mean)
        assert np.allclose(bn_new.running_var, bn_orig.running_var)


class TestGenericTraversal:
    def test_walk_finds_batchnorms_outside_sequential(self):
        model = ResidualBlock(1)
        bns = _walk_batchnorms(model)
        assert bns == [model.norm, model.head.modules[1]]

    def test_non_sequential_round_trip_restores_bn_stats(self, tmp_path):
        model = ResidualBlock(2)
        model.train()
        model.forward(np.random.default_rng(3).normal(5.0, 2.0, size=(128, 4)))
        path = tmp_path / "res.npz"
        save_model_params(model, path)

        fresh = ResidualBlock(9)
        load_model_params(fresh, path)
        assert np.allclose(fresh.norm.running_mean, model.norm.running_mean)
        assert np.allclose(fresh.norm.running_var, model.norm.running_var)
        head_bn = model.head.modules[1]
        fresh_bn = fresh.head.modules[1]
        assert np.allclose(fresh_bn.running_mean, head_bn.running_mean)
        assert np.allclose(fresh_bn.running_var, head_bn.running_var)

    def test_batchnorm_stat_shape_mismatch_raises(self, tmp_path):
        """A tampered archive with mis-sized running stats must not
        broadcast silently into the model."""
        model = make_model(7)
        path = tmp_path / "m.npz"
        save_model_params(model, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["bn_0_mean"] = np.zeros(1)  # would broadcast over width 4
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="batchnorm 0 running_mean"):
            load_model_params(make_model(8), path)
