"""Property-based tests of NN layer invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import BatchNorm1d, Linear, ReLU, Sequential, Sigmoid

shapes = st.tuples(
    st.integers(min_value=2, max_value=64),   # batch
    st.integers(min_value=1, max_value=16),   # features
)


@given(shapes, st.integers(min_value=1, max_value=16), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_linear_shape_and_linearity(shape, out_features, seed):
    batch, in_features = shape
    rng = np.random.default_rng(seed)
    layer = Linear(in_features, out_features, rng)
    x = rng.normal(size=(batch, in_features))
    y = rng.normal(size=(batch, in_features))
    out_sum = layer.forward(x + y) - layer.bias.value
    out_parts = (
        layer.forward(x) - layer.bias.value
    ) + (layer.forward(y) - layer.bias.value)
    assert out_sum.shape == (batch, out_features)
    assert np.allclose(out_sum, out_parts, atol=1e-9)


@given(shapes, st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_batchnorm_training_output_standardized(shape, seed):
    batch, features = shape
    rng = np.random.default_rng(seed)
    bn = BatchNorm1d(features)
    bn.train()
    x = rng.normal(3.0, 2.0, size=(batch, features)) + rng.uniform(
        -5, 5, features
    )
    out = bn.forward(x)
    assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
    # Unit variance only when the batch actually varies.
    varying = x.std(axis=0) > 1e-8
    assert np.all(out.std(axis=0)[varying] < 1.01)


@given(shapes, st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_relu_idempotent_and_nonnegative(shape, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    relu = ReLU()
    once = relu.forward(x)
    twice = ReLU().forward(once)
    assert np.all(once >= 0)
    assert np.array_equal(once, twice)


@given(shapes, st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_sigmoid_bounds_and_symmetry(shape, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(scale=10.0, size=shape)
    s = Sigmoid()
    out = s.forward(x)
    # Closed bounds: float rounding saturates to exactly 0/1 beyond |x|~37.
    assert np.all((out >= 0) & (out <= 1))
    moderate = np.abs(x) < 30.0
    assert np.all((out[moderate] > 0) & (out[moderate] < 1))
    flipped = Sigmoid().forward(-x)
    assert np.allclose(out + flipped, 1.0, atol=1e-12)


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=4),
    st.integers(0, 10_000),
)
@settings(max_examples=20, deadline=None)
def test_sequential_backward_shape_roundtrip(features, depth, seed):
    """Backward always returns a gradient matching the input shape."""
    rng = np.random.default_rng(seed)
    modules = []
    width = features
    for _ in range(depth):
        modules += [Linear(width, width + 1, rng), ReLU()]
        width += 1
    model = Sequential(*modules)
    x = rng.normal(size=(5, features))
    out = model.forward(x)
    grad_in = model.backward(np.ones_like(out))
    assert grad_in.shape == x.shape
    assert np.all(np.isfinite(grad_in))
