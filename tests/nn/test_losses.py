"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn.losses import BCEWithLogitsLoss, MSELoss


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        v, _ = loss(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert v == pytest.approx(2.5)

    def test_gradient(self):
        loss = MSELoss()
        _, g = loss(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert np.allclose(g, [[1.0, 2.0]])

    def test_gradient_numeric(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(5, 3))
        target = rng.normal(size=(5, 3))
        loss = MSELoss()
        _, g = loss(pred, target)
        eps = 1e-6
        p2 = pred.copy()
        p2[2, 1] += eps
        v1, _ = loss(p2, target)
        p2[2, 1] -= 2 * eps
        v2, _ = loss(p2, target)
        assert (v1 - v2) / (2 * eps) == pytest.approx(g[2, 1], rel=1e-5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros((2, 1)), np.zeros((2, 2)))

    def test_zero_at_perfect(self):
        v, g = MSELoss()(np.ones((3, 2)), np.ones((3, 2)))
        assert v == 0.0
        assert np.allclose(g, 0.0)


class TestBCEWithLogits:
    def test_matches_reference(self):
        z = np.array([[0.0], [2.0], [-3.0]])
        y = np.array([[1.0], [0.0], [1.0]])
        loss = BCEWithLogitsLoss()
        v, _ = loss(z, y)
        p = 1.0 / (1.0 + np.exp(-z))
        ref = -np.mean(y * np.log(p) + (1 - y) * np.log(1 - p))
        assert v == pytest.approx(ref, rel=1e-9)

    def test_gradient_is_sigmoid_minus_target(self):
        z = np.array([[0.5], [-1.0]])
        y = np.array([[1.0], [0.0]])
        _, g = BCEWithLogitsLoss()(z, y)
        p = 1.0 / (1.0 + np.exp(-z))
        assert np.allclose(g, (p - y) / z.size)

    def test_extreme_logits_stable(self):
        z = np.array([[1000.0], [-1000.0]])
        y = np.array([[1.0], [0.0]])
        v, g = BCEWithLogitsLoss()(z, y)
        assert np.isfinite(v) and np.all(np.isfinite(g))
        assert v == pytest.approx(0.0, abs=1e-9)

    def test_pos_weight_scales_positive_terms(self):
        z = np.array([[0.0], [0.0]])
        y = np.array([[1.0], [0.0]])
        v1, _ = BCEWithLogitsLoss(pos_weight=1.0)(z, y)
        v3, _ = BCEWithLogitsLoss(pos_weight=3.0)(z, y)
        # log(2) average; tripling the positive term: (3+1)/2 vs (1+1)/2.
        assert v3 / v1 == pytest.approx(2.0)

    def test_invalid_pos_weight(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss(pos_weight=0.0)

    def test_gradient_numeric(self):
        rng = np.random.default_rng(1)
        z = rng.normal(size=(6, 1))
        y = (rng.uniform(size=(6, 1)) > 0.5).astype(float)
        loss = BCEWithLogitsLoss(pos_weight=2.0)
        _, g = loss(z, y)
        eps = 1e-6
        z2 = z.copy()
        z2[3, 0] += eps
        v1, _ = loss(z2, y)
        z2[3, 0] -= 2 * eps
        v2, _ = loss(z2, y)
        assert (v1 - v2) / (2 * eps) == pytest.approx(g[3, 0], rel=1e-4)
