"""Tests for optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam


def quadratic_setup(start=5.0):
    p = Parameter(np.array([start]))
    return p


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0, 2.0]))
        p.grad[...] = [0.5, -0.5]
        SGD([p], lr=0.1).step()
        assert np.allclose(p.value, [0.95, 2.05])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad[...] = [1.0]
        opt.step()  # v=1, p=-1
        p.grad[...] = [1.0]
        opt.step()  # v=1.9, p=-2.9
        assert p.value[0] == pytest.approx(-2.9)

    def test_weight_decay(self):
        p = Parameter(np.array([2.0]))
        p.grad[...] = [0.0]
        SGD([p], lr=0.1, weight_decay=0.5).step()
        assert p.value[0] == pytest.approx(2.0 - 0.1 * 0.5 * 2.0)

    def test_converges_on_quadratic(self):
        p = quadratic_setup()
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(200):
            p.grad[...] = 2.0 * p.value  # d/dp p^2
            opt.step()
        assert abs(p.value[0]) < 1e-4

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.grad[...] = [5.0]
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad[0] == 0.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_setup()
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            p.grad[...] = 2.0 * p.value
            opt.step()
        assert abs(p.value[0]) < 1e-3

    def test_first_step_magnitude(self):
        """Bias correction makes the first step ~lr regardless of grad scale."""
        for scale in [1e-3, 1.0, 1e3]:
            p = Parameter(np.array([0.0]))
            p.grad[...] = [scale]
            Adam([p], lr=0.01).step()
            assert abs(p.value[0]) == pytest.approx(0.01, rel=1e-3)

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        p.grad[...] = [0.0]
        opt = Adam([p], lr=0.01, weight_decay=1.0)
        opt.step()
        assert p.value[0] < 1.0
