"""Tests for data utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.data import StandardScaler, batch_iterator, train_val_test_split


class TestSplit:
    def test_disjoint_and_covering(self):
        tr, va, te = train_val_test_split(100, np.random.default_rng(0))
        combined = np.sort(np.concatenate([tr, va, te]))
        assert np.array_equal(combined, np.arange(100))

    def test_paper_fractions(self):
        tr, va, te = train_val_test_split(1000, np.random.default_rng(1))
        assert te.size == 200
        assert va.size == 160
        assert tr.size == 640

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            train_val_test_split(2, np.random.default_rng(2))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_val_test_split(100, np.random.default_rng(3), test_fraction=1.0)

    @given(st.integers(min_value=10, max_value=500))
    @settings(max_examples=30)
    def test_property_disjoint(self, n):
        tr, va, te = train_val_test_split(n, np.random.default_rng(4))
        assert len(set(tr) | set(va) | set(te)) == n
        assert len(set(tr) & set(va)) == 0
        assert len(set(tr) & set(te)) == 0


class TestBatchIterator:
    def test_covers_all_samples(self):
        x = np.arange(10)[:, None].astype(float)
        y = np.arange(10).astype(float)
        seen = []
        for xb, yb in batch_iterator(x, y, 3, np.random.default_rng(5)):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_batch_sizes(self):
        x = np.zeros((10, 2))
        y = np.zeros(10)
        sizes = [
            xb.shape[0]
            for xb, _ in batch_iterator(x, y, 4, np.random.default_rng(6))
        ]
        assert sizes == [4, 4, 2]

    def test_no_shuffle_preserves_order(self):
        x = np.arange(6)[:, None].astype(float)
        y = np.arange(6).astype(float)
        batches = list(
            batch_iterator(x, y, 2, np.random.default_rng(7), shuffle=False)
        )
        assert np.array_equal(batches[0][1], [0, 1])

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(batch_iterator(np.zeros((2, 1)), np.zeros(2), 0,
                                np.random.default_rng(8)))


class TestStandardScaler:
    def test_zero_mean_unit_var(self):
        rng = np.random.default_rng(9)
        x = rng.normal(5.0, 3.0, size=(1000, 4))
        out = StandardScaler().fit_transform(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-12)

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(10)
        x = rng.normal(size=(50, 3))
        sc = StandardScaler().fit(x)
        assert np.allclose(sc.inverse_transform(sc.transform(x)), x)

    def test_constant_feature_no_nan(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        out = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(out))
        assert np.allclose(out[:, 0], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    @given(st.integers(min_value=2, max_value=50))
    @settings(max_examples=20)
    def test_property_round_trip(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=(n, 3)) * rng.uniform(0.1, 10)
        sc = StandardScaler().fit(x)
        assert np.allclose(sc.inverse_transform(sc.transform(x)), x, atol=1e-9)
