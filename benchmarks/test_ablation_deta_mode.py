"""Ablation — replacing vs only-widening dEta on bright bursts.

EXPERIMENTS.md notes one deviation from the paper: wholesale replacement
of the propagated ``d eta`` with the network's prediction costs a few
tenths of a degree at 68% containment on *bright* bursts, where
propagation is already adequate.  The ``widen_only`` mode (take
``max(network, propagated)``) is the conservative alternative.  This
bench measures both modes at 2 MeV/cm².
"""

import numpy as np

from repro.detector.response import DetectorResponse
from repro.experiments.containment import containment
from repro.experiments.trials import TrialConfig, run_trials
from repro.geometry.tiles import adapt_geometry
from repro.pipeline.ml_pipeline import MLPipeline, MLPipelineConfig

N_TRIALS = 25
FLUENCE = 2.0


def test_ablation_deta_mode(benchmark, trained_models):
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)

    def sweep():
        out = {}
        for mode in ("replace", "widen_only"):
            pipeline = MLPipeline(
                background_net=trained_models.background_net,
                deta_net=trained_models.deta_net,
                config=MLPipelineConfig(deta_mode=mode),
            )
            out[mode] = run_trials(
                geometry,
                response,
                seed=777,
                n_trials=N_TRIALS,
                config=TrialConfig(fluence_mev_cm2=FLUENCE, condition="ml"),
                ml_pipeline=pipeline,
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print(f"\nAblation — dEta application mode ({FLUENCE} MeV/cm^2, polar 0)")
    for mode, errs in results.items():
        print(
            f"  {mode:10s}: 68%={containment(errs, 0.68):6.2f} deg  "
            f"95%={containment(errs, 0.95):6.2f} deg"
        )

    # Conservative widening should not lose on bright bursts (same seeds).
    c_replace = containment(results["replace"], 0.68)
    c_widen = containment(results["widen_only"], 0.68)
    assert c_widen <= c_replace + 0.5
