"""Table II — stage timings on the Atom E3845 flight candidate.

Same structure as the Table I bench: the calibrated platform model
reproduces the paper's rows; ``benchmark`` times the real host stages.
"""

import numpy as np

from repro.experiments.figures import print_timing_table
from repro.platforms.platforms import ATOM, RPI3B_PLUS
from repro.platforms.timing import time_pipeline_stages


def test_table2_atom_timing(benchmark, trained_models):
    from repro.detector.response import DetectorResponse
    from repro.geometry.tiles import adapt_geometry

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    rng = np.random.default_rng(1)

    result = benchmark.pedantic(
        lambda: time_pipeline_stages(
            geometry, response, trained_models.pipeline, rng, repeats=3
        ),
        rounds=1,
        iterations=1,
    )

    print_timing_table(ATOM)
    print(
        f"\n  Host measurement ({result.num_events} events, "
        f"{result.num_rings} rings):"
    )
    for stage, samples in result.timer.times_ms.items():
        lo, hi = result.timer.range_ms(stage)
        print(f"  {stage:22s} {np.mean(samples):10.1f} {lo:6.1f}-{hi:.1f}")

    atom = ATOM.predict()
    rpi = RPI3B_PLUS.predict()
    assert abs(atom.total_mean() - 220.7) < 0.5
    # Shape: the Atom runs the full pipeline ~3-4x faster than the RPi.
    assert 2.5 < rpi.total_mean() / atom.total_mean() < 5.0
