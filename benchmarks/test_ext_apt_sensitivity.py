"""Extension — the full APT instrument on dim bursts (paper Section VI).

The paper's conclusion predicts that APT — ~25x the aperture and ~5x the
scintillator depth of the balloon demonstrator, flying above the
atmospheric background at L2 — "could allow localization of even dim
(< 0.1 MeV/cm^2) GRBs to within a degree or less."  This bench runs that
study: same pipeline, APT geometry + quieter space background, fluence
0.1 MeV/cm^2, versus the ADAPT demonstrator on the same bursts.
"""

import numpy as np

from repro.detector.response import DetectorResponse, ResponseConfig
from repro.experiments.containment import containment
from repro.geometry.tiles import adapt_geometry, apt_geometry
from repro.localization.pipeline import localize_baseline
from repro.sources.background import BackgroundModel
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource

#: APT flight-model readout: better light collection and smaller response
#: tails than the balloon demonstrator (a design assumption of the APT
#: concept, documented in DESIGN.md).
APT_RESPONSE = ResponseConfig(
    pe_per_mev=2000.0, tail_probability=0.05, nonuniformity_amplitude=0.03
)
#: At L2 there is no atmospheric MeV background; only the (much weaker)
#: cosmic diffuse flux from the sky hemisphere remains.
APT_BACKGROUND = BackgroundModel(flux_per_cm2_s=1.0, cos_polar_min=0.0)

FLUENCE = 0.1
N_TRIALS = 16


def _run(geometry, response, background, seed0):
    errs = []
    for i in range(N_TRIALS):
        rng = np.random.default_rng(seed0 + i)
        grb = GRBSource(
            fluence_mev_cm2=FLUENCE,
            polar_angle_deg=20.0,
            azimuth_deg=float(rng.uniform(0, 360)),
        )
        exp = simulate_exposure(geometry, rng, grb, background)
        ev = response.digitize(exp.transport, exp.batch, rng, min_hits=2)
        out = localize_baseline(ev, rng)
        errs.append(out.error_degrees(grb.source_direction))
    return np.array(errs)


def test_ext_apt_sensitivity(benchmark):
    apt = apt_geometry()
    adapt = adapt_geometry()

    def study():
        return {
            "apt": _run(apt, DetectorResponse(apt, APT_RESPONSE),
                        APT_BACKGROUND, 1000),
            "adapt": _run(adapt, DetectorResponse(adapt),
                          BackgroundModel(), 2000),
        }

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    print(f"\nExtension — {FLUENCE} MeV/cm^2 burst (paper Section VI)")
    for name, errs in results.items():
        print(
            f"  {name:6s}: median={np.median(errs):6.2f} deg  "
            f"68%={containment(errs, 0.68):6.2f} deg  "
            f"95%={containment(errs, 0.95):6.2f} deg"
        )

    # Shape: APT localizes dim bursts at few-degree scale (approaching the
    # paper's "degree or less" with the ML pipeline on top); the
    # demonstrator cannot — its median error is an order of magnitude
    # worse.
    assert np.median(results["apt"]) < 6.0
    assert np.median(results["adapt"]) > 5.0 * np.median(results["apt"])
