"""Figure 9 — localization accuracy vs fluence (normal incidence).

Paper shape: error decreases with brightness for both pipelines; the NN
pipeline improves accuracy throughout and the gain is largest for dimmer
bursts (where background dominates the ring population).
"""

import numpy as np

from repro.experiments.figures import figure9, print_figure9


def test_fig9_fluence_sweep(benchmark, scale, trained_models):
    results = benchmark.pedantic(
        lambda: figure9(scale, trained_models), rounds=1, iterations=1
    )
    print_figure9(results)

    fluences = sorted(results)
    base95 = np.array([results[f]["baseline"].mean95 for f in fluences])
    ml95 = np.array([results[f]["ml"].mean95 for f in fluences])
    # Brighter bursts localize better (comparing the extremes).
    assert results[fluences[-1]]["ml"].mean95 <= results[fluences[0]]["ml"].mean95 + 1.0
    # NN pipeline does not lose overall and wins somewhere in the sweep.
    assert ml95.mean() <= base95.mean() + 0.5
