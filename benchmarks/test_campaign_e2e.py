"""End-to-end campaign benchmark: persistent executor vs seed parallel map.

The workload is a miniature fig-9-shaped campaign — a sweep of fluence
points, each mapping independent baseline trials over workers.  Low
fluence means cheap trials, so per-stage pool startup dominated the seed
implementation at exactly the points papers sweep the most.  Two
implementations run it:

* ``run_campaign_legacy`` — the seed ``parallel_map`` behavior, copied
  verbatim: a fresh ``spawn`` pool per campaign stage, with geometry and
  response pickled into every task tuple.
* ``run_campaign_executor`` — the persistent :class:`CampaignExecutor`:
  one pool for the whole campaign, the campaign-constant context
  broadcast once, arguments/results via shared memory.

Both produce bit-identical error arrays (asserted below), so the timing
difference is pure orchestration overhead: per-stage interpreter startup
+ ``import numpy`` in the legacy path, and per-task context pickling.
``scripts/bench_report.py`` records both timings in ``BENCH_pr1.json``.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

#: The campaign: one trial set per fluence point (the paper's fig 9 sweep
#: shape), at a fixed mid-sweep polar angle.  Many small stages is the
#: orchestration-overhead-dominated regime this benchmark isolates: per
#: stage the seed paid a fresh pool (interpreter + numpy/scipy imports in
#: every worker) that the persistent executor pays once per campaign.
FLUENCES = tuple(round(0.1 * k, 1) for k in range(1, 13))
POLAR_DEG = 30.0
N_TRIALS = 3
N_WORKERS = 4


def _legacy_trial_worker(args: tuple) -> float:
    """Seed-style worker: full context arrives pickled in every task."""
    from repro.experiments.trials import trial_error

    geometry, response, seed_seq, config, ml_pipeline = args
    return trial_error(
        geometry,
        response,
        np.random.default_rng(seed_seq),
        config,
        ml_pipeline,
    )


def run_campaign_legacy(geometry, response, n_workers: int = N_WORKERS):
    """The campaign as the seed ran it: one fresh pool per stage."""
    from repro.experiments.trials import TrialConfig

    out = []
    for fluence in FLUENCES:
        config = TrialConfig(fluence_mev_cm2=fluence, polar_angle_deg=POLAR_DEG)
        seeds = np.random.SeedSequence(_stage_seed(fluence)).spawn(N_TRIALS)
        args = [(geometry, response, ss, config, None) for ss in seeds]
        ctx = mp.get_context("spawn")
        with ctx.Pool(processes=n_workers) as pool:
            out.append(np.array(pool.map(_legacy_trial_worker, args)))
    return out


def run_campaign_executor(geometry, response, n_workers: int = N_WORKERS):
    """The same campaign on one persistent executor, including its startup."""
    from repro.experiments.trials import TrialConfig, run_trials
    from repro.parallel import CampaignExecutor

    out = []
    with CampaignExecutor(n_workers) as ex:
        for fluence in FLUENCES:
            out.append(
                run_trials(
                    geometry,
                    response,
                    seed=_stage_seed(fluence),
                    n_trials=N_TRIALS,
                    config=TrialConfig(
                        fluence_mev_cm2=fluence, polar_angle_deg=POLAR_DEG
                    ),
                    executor=ex,
                )
            )
    return out


def _stage_seed(fluence: float) -> int:
    return 9000 + int(round(fluence * 10))


@pytest.fixture(scope="module")
def geometry():
    from repro.geometry.tiles import adapt_geometry

    return adapt_geometry()


@pytest.fixture(scope="module")
def response(geometry):
    from repro.detector.response import DetectorResponse

    return DetectorResponse(geometry)


def test_campaign_implementations_bit_identical(geometry, response):
    """Executor and legacy paths are the same experiment, bit for bit."""
    from repro.experiments.trials import TrialConfig, run_trials

    serial = [
        run_trials(
            geometry,
            response,
            seed=_stage_seed(fluence),
            n_trials=N_TRIALS,
            config=TrialConfig(
                fluence_mev_cm2=fluence, polar_angle_deg=POLAR_DEG
            ),
        )
        for fluence in FLUENCES
    ]
    pooled = run_campaign_executor(geometry, response, n_workers=2)
    legacy = run_campaign_legacy(geometry, response, n_workers=2)
    for ref, ex, lg in zip(serial, pooled, legacy):
        np.testing.assert_array_equal(ref, ex)
        np.testing.assert_array_equal(ref, lg)


def test_perf_campaign_executor(benchmark, geometry, response):
    """One full campaign on a cold persistent executor (startup included)."""
    benchmark.pedantic(
        run_campaign_executor, args=(geometry, response), rounds=1, iterations=1
    )


def test_perf_campaign_legacy(benchmark, geometry, response):
    """The same campaign through the seed fresh-pool-per-stage path."""
    benchmark.pedantic(
        run_campaign_legacy, args=(geometry, response), rounds=1, iterations=1
    )
