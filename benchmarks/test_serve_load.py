"""Serving-layer load benchmark: sustained req/s vs latency percentiles.

The workload drives a fresh :class:`repro.serve.LocalizationServer` with
``n`` concurrent closed-loop clients (each submits a localization,
awaits the outcome, immediately submits the next) over a pre-simulated
event pool, so the measured path is pure serving + batched inference —
no simulation in the loop.  Three client counts bracket the batching
regimes: a single client (passthrough, no coalescing), a moderate fan-in
(micro-batches form under the deadline), and a full fan-in (every flush
gathers most clients).

The parity test asserts the served outcomes are *bitwise* identical to
the offline ``localize_many`` path on the same inputs before any timing
runs: the scheduler reproduces its grouping (same kinds, same
submission order), so fused batches see identical BLAS shapes.
``scripts/bench_report.py --serve`` runs the same sweep and writes
``BENCH_serve.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

#: Client counts swept by the perf tests (and ``bench_report --serve``).
CLIENT_COUNTS = (1, 4, 8)
REQUESTS_PER_CLIENT = 4
POOL_SIZE = 8
POOL_SEED = 1105


@pytest.fixture(scope="module")
def geometry():
    from repro.geometry.tiles import adapt_geometry

    return adapt_geometry()


@pytest.fixture(scope="module")
def response(geometry):
    from repro.detector.response import DetectorResponse

    return DetectorResponse(geometry)


@pytest.fixture(scope="module")
def event_pool(geometry, response):
    from repro.serve import synthetic_event_pool

    return synthetic_event_pool(
        POOL_SIZE, POOL_SEED, geometry=geometry, response=response
    )


@pytest.fixture(scope="module")
def pipeline(trained_models):
    return trained_models.pipeline


@pytest.fixture(scope="module")
def engine(pipeline):
    from repro.infer import build_engine

    return build_engine(pipeline, "planned", dtype="float64")


def run_serve_load(pipeline, event_pool, n_clients, engine=None):
    """One closed-loop load run at ``n_clients``; returns the LoadReport."""
    from repro.serve import run_load

    return run_load(
        pipeline,
        event_pool,
        seed=POOL_SEED + n_clients,
        n_clients=n_clients,
        requests_per_client=REQUESTS_PER_CLIENT,
        engine=engine,
    )


def test_served_outcomes_match_localize_many_bitwise(
    pipeline, engine, event_pool
):
    """Serving is the offline batched path, bit for bit."""
    from repro.infer import localize_many
    from repro.serve import serve_events

    event_sets = event_pool[:4]
    seeds = np.random.SeedSequence(POOL_SEED + 1).spawn(len(event_sets))
    ref = localize_many(
        pipeline,
        event_sets,
        [np.random.default_rng(s) for s in seeds],
        engine=engine,
    )
    served = serve_events(
        pipeline,
        event_sets,
        [np.random.default_rng(s) for s in seeds],
        engine=engine,
    )
    assert len(served) == len(ref)
    for s, r in zip(served, ref):
        np.testing.assert_array_equal(s.direction, r.direction)
        assert s.iterations == r.iterations
        assert s.rings_kept == r.rings_kept


@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_perf_serve_load(benchmark, pipeline, engine, event_pool,
                         n_clients):
    """Sustained closed-loop serving at ``n_clients`` concurrent clients."""
    report = benchmark.pedantic(
        run_serve_load,
        args=(pipeline, event_pool, n_clients),
        kwargs={"engine": engine},
        rounds=1,
        iterations=1,
    )
    assert report.completed == n_clients * REQUESTS_PER_CLIENT
    assert report.rejected == 0
    benchmark.extra_info.update(report.to_dict())
