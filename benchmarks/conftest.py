"""Shared benchmark fixtures.

Trained models are cached on disk (``.model_cache/``) by the model zoo, so
the suite trains each model variant exactly once no matter how many bench
files need it.  Set ``REPRO_BENCH_SCALE`` to scale trial counts (1.0 =
quick defaults; the paper's statistics correspond to roughly 30-40).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = str(Path(__file__).resolve().parents[1] / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture(scope="session")
def trained_models():
    from repro.experiments.modelzoo import get_or_train_pipeline

    return get_or_train_pipeline()


@pytest.fixture(scope="session")
def scale():
    from repro.experiments.figures import ExperimentScale

    return ExperimentScale.from_env()
