"""Table I — stage timings on the Raspberry Pi 3B+.

Prints the calibrated platform model's rows (which reproduce the paper's
table at the nominal workload) alongside the *measured* stage times of
this Python implementation on the host, with the workload counts that
link them.  ``benchmark`` times one real host pipeline pass.
"""

import numpy as np

from repro.experiments.figures import print_timing_table
from repro.platforms.platforms import RPI3B_PLUS
from repro.platforms.timing import time_pipeline_stages


def test_table1_rpi_timing(benchmark, trained_models):
    from repro.detector.response import DetectorResponse
    from repro.geometry.tiles import adapt_geometry

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    rng = np.random.default_rng(0)

    result = benchmark.pedantic(
        lambda: time_pipeline_stages(
            geometry, response, trained_models.pipeline, rng, repeats=3
        ),
        rounds=1,
        iterations=1,
    )

    print_timing_table(RPI3B_PLUS)
    print(
        f"\n  Host measurement ({result.num_events} events, "
        f"{result.num_rings} rings):"
    )
    for stage, samples in result.timer.times_ms.items():
        lo, hi = result.timer.range_ms(stage)
        print(f"  {stage:22s} {np.mean(samples):10.1f} {lo:6.1f}-{hi:.1f}")

    # The platform model reproduces the paper's totals exactly.
    times = RPI3B_PLUS.predict()
    assert times.total_mean() == round(times.total_mean(), 1) or True
    assert abs(times.total_mean() - 834.0) < 0.5
