"""Micro-benchmarks of the hot computational kernels.

Not a paper artifact — a performance regression suite for the library's
vectorized cores (the hpc-parallel guides' "no optimization without
measuring").  Each benchmark times one kernel at a realistic workload:

* Monte-Carlo transport of a 50k-photon batch;
* Klein--Nishina sampling;
* digitization + ring building for one exposure;
* background-network forward pass (FP32 and true-INT8) on 597 rings;
* one robust refinement solve over ~500 rings;
* every entry in the ``repro.perf`` op registry (smoke: built and
  called twice, so a registered-but-broken benchmark fails here fast),
  with the INT8 linear kernel also timed under pytest-benchmark.
"""

import numpy as np
import pytest

import repro.perf as perf

from repro.detector.response import DetectorResponse
from repro.geometry.tiles import adapt_geometry
from repro.localization.refinement import refine_source
from repro.physics.compton import sample_klein_nishina
from repro.physics.spectra import BandSpectrum
from repro.physics.transport import transport_photons
from repro.reconstruction.rings import build_rings
from repro.sources.background import BackgroundModel
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource


@pytest.fixture(scope="module")
def geometry():
    return adapt_geometry()


@pytest.fixture(scope="module")
def response(geometry):
    return DetectorResponse(geometry)


# Unlike geometry/response (immutable, no RNG), the exposure/events inputs
# are rebuilt per benchmark from a fresh generator: function scope keeps
# every benchmark's workload identical whether the module runs whole, as a
# subset, or reordered, and no benchmark can skew another by mutating a
# shared object.
@pytest.fixture
def exposure(geometry):
    rng = np.random.default_rng(0)
    return simulate_exposure(geometry, rng, GRBSource(), BackgroundModel())


@pytest.fixture
def events(exposure, response):
    rng = np.random.default_rng(1)
    return response.digitize(exposure.transport, exposure.batch, rng, min_hits=2)


def test_perf_transport_50k(benchmark, geometry):
    rng = np.random.default_rng(2)
    n = 50_000
    spec = BandSpectrum()
    energies = spec.sample(n, rng)
    half = geometry.half_size
    origins = np.stack(
        [
            rng.uniform(-half, half, n),
            rng.uniform(-half, half, n),
            np.full(n, 1.0),
        ],
        axis=1,
    )
    directions = np.tile([0.0, 0.0, -1.0], (n, 1))

    result = benchmark(
        lambda: transport_photons(
            geometry, origins, directions, energies, np.random.default_rng(3)
        )
    )
    assert result.num_photons == n


def test_perf_klein_nishina_100k(benchmark):
    energies = np.geomspace(0.03, 30.0, 100_000)

    out = benchmark(
        lambda: sample_klein_nishina(energies, np.random.default_rng(4))
    )
    assert out.shape == energies.shape


def test_perf_digitize_and_rings(benchmark, exposure, response):
    def run():
        ev = response.digitize(
            exposure.transport, exposure.batch, np.random.default_rng(5),
            min_hits=2,
        )
        return build_rings(ev)

    rings = benchmark(run)
    assert rings.num_rings > 100


def test_perf_background_net_fp32(benchmark, trained_models, events):
    from repro.models.features import extract_features
    from repro.localization.pipeline import prepare_rings

    rings = prepare_rings(events)
    feats = extract_features(rings, events, polar_guess_deg=0.0)
    net = trained_models.background_net

    probs = benchmark(net.predict_proba, feats)
    assert probs.shape[0] == rings.num_rings


@pytest.mark.parametrize(
    "bench", perf.registered(), ids=lambda bench: bench.name
)
def test_perf_registered_op_smoke(bench):
    """Each registered op benchmark builds and runs (twice: the second
    call exercises buffer-reuse paths)."""
    fn, rows = bench.build()
    assert rows > 0
    fn()
    assert fn() is not None


def test_perf_int8_linear_block597(benchmark):
    """The fixed-point INT8 linear kernel at the paper block shape."""
    (entry,) = [
        b for b in perf.registered() if b.name == "int8_linear_block597"
    ]
    fn, _rows = entry.build()
    out = benchmark(fn)
    assert out.shape[0] == 597


def test_perf_refinement(benchmark, events):
    from repro.localization.pipeline import prepare_rings

    rings = prepare_rings(events)
    start = np.array([0.05, 0.0, 1.0])
    start /= np.linalg.norm(start)

    res = benchmark(refine_source, rings, start)
    assert res.direction is not None
