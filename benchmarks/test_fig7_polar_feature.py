"""Figure 7 — impact of including the polar angle as a network input.

Trains model pairs with and without the polar-angle feature and compares
ML-pipeline localization across polar angles at 1 MeV/cm^2.

Paper shape: the polar-input models win, most visibly at the extreme
angles (lowest and highest), and in the 95% tail.
"""

import numpy as np

from repro.experiments.figures import figure7, print_figure7


def test_fig7_polar_feature(benchmark, scale):
    results = benchmark.pedantic(lambda: figure7(scale), rounds=1, iterations=1)
    print_figure7(results)

    angles = sorted(results)
    polar95 = np.array([results[a]["polar"].mean95 for a in angles])
    nopolar95 = np.array([results[a]["no_polar"].mean95 for a in angles])
    # Averaged over the sweep, the polar-input models should not lose in
    # the tail.
    assert polar95.mean() <= nopolar95.mean() + 2.0
