"""Figure 10 — localization accuracy with perturbed inputs.

Gaussian noise with sigma = eps% of each measured value is added to every
hit's position and energy before reconstruction, eps in {0, 1, 5, 10}.

Paper shape: error grows with eps for both pipelines; the NN pipeline
keeps its advantage under perturbation and its 68% containment grows more
slowly with noise than the baseline's.
"""

import numpy as np

from repro.experiments.figures import figure10, print_figure10


def test_fig10_perturbation(benchmark, scale, trained_models):
    results = benchmark.pedantic(
        lambda: figure10(scale, trained_models), rounds=1, iterations=1
    )
    print_figure10(results)

    eps = sorted(results)
    ml68 = np.array([results[e]["ml"].mean68 for e in eps])
    base68 = np.array([results[e]["baseline"].mean68 for e in eps])
    ml95 = np.array([results[e]["ml"].mean95 for e in eps])
    base95 = np.array([results[e]["baseline"].mean95 for e in eps])
    # Noise hurts: the strongest perturbation is no better than none.
    assert ml68[-1] >= ml68[0] - 0.5
    # NN pipeline keeps helping under perturbation (tail, sweep average).
    assert ml95.mean() <= base95.mean() + 0.5
    # 68% growth with noise is no steeper with the networks than without.
    assert (ml68[-1] - ml68[0]) <= (base68[-1] - base68[0]) + 2.0
