"""Table III — INT8 vs FP32 background-network kernel on the FPGA.

Runs the analytical HLS dataflow model for both datatypes and prints the
table's rows.  ``benchmark`` times the INT8 *integer inference engine* on
the paper's batch of 597 rings, demonstrating the actual int8 arithmetic
path this repository implements.

Paper shape: INT8 achieves ~1.75x the throughput of FP32, far fewer BRAM
and DSP, and 4.13 ms vs 7.22 ms for 597 rings at a 10 ns clock.
"""

import numpy as np
import pytest

from repro.experiments.figures import print_table3, table3
from repro.fpga.hls_model import PAPER_NUM_RINGS


def test_table3_fpga(benchmark, trained_models):
    from repro.models.background import BackgroundTrainConfig, train_background_net
    from repro.models.quantized import quantize_background_net
    from repro.sources.grb import LABEL_BACKGROUND

    reports = table3()
    print_table3(reports)

    # Build the INT8 engine from a (small, quick) swapped retrain and time
    # a 597-ring batch through the integer path.
    data = trained_models.data
    labels = (data.labels == LABEL_BACKGROUND).astype(float)
    rng = np.random.default_rng(3)
    swapped = train_background_net(
        data.features, labels, data.polar_true, rng,
        config=BackgroundTrainConfig(max_epochs=12, patience=5, swapped=True),
    )
    int8_net = quantize_background_net(
        swapped, data.features, labels, data.polar_true, rng, qat_epochs=2
    )
    batch = data.features[:PAPER_NUM_RINGS]
    logits = benchmark(int8_net.predict_logit, batch)
    assert logits.shape[0] == min(PAPER_NUM_RINGS, batch.shape[0])

    r8, r32 = reports["int8"], reports["fp32"]
    ratio = r8.throughput_per_second() / r32.throughput_per_second()
    assert ratio == pytest.approx(1.75, abs=0.1)
    assert r8.bram < r32.bram
    assert r8.dsp < r32.dsp
    assert r8.batch_latency_ms(PAPER_NUM_RINGS) == pytest.approx(4.13, abs=0.1)
    assert r32.batch_latency_ms(PAPER_NUM_RINGS) == pytest.approx(7.22, abs=0.1)
