"""Figure 11 — localization accuracy with the quantized background model.

The swapped-order background network is fused, QAT-fine-tuned, converted
to true INT8 integer inference, and swapped into the ML pipeline (dEta
stays FP32, as in the paper).

Paper shape: INT8 performs almost as well as FP32 at 68% containment;
the 95% tail degrades somewhat.
"""

import numpy as np

from repro.experiments.figures import figure11, print_figure11


def test_fig11_quantization(benchmark, scale):
    results = benchmark.pedantic(lambda: figure11(scale), rounds=1, iterations=1)
    print_figure11(results)

    angles = sorted(results)
    fp68 = np.array([results[a]["fp32"].mean68 for a in angles])
    int68 = np.array([results[a]["int8"].mean68 for a in angles])
    # INT8 tracks FP32 at 68% containment across the sweep.
    assert np.abs(int68.mean() - fp68.mean()) < 2.0
