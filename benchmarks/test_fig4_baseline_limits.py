"""Figure 4 — impact of background and d-eta error on the baseline pipeline.

Regenerates the paper's three bar groups (full pipeline, background
removed, true d-eta substituted) at 1 MeV/cm^2, normal incidence, with
68%/95% containment and meta-trial error bars.

Paper shape: both oracles substantially improve on the full pipeline; the
true-d-eta oracle is the strongest condition.
"""

from repro.experiments.figures import figure4, print_figure4


def test_fig4_baseline_limits(benchmark, scale):
    results = benchmark.pedantic(
        lambda: figure4(scale), rounds=1, iterations=1
    )
    print_figure4(results)

    full = results["baseline"]
    no_bkg = results["no_background"]
    true_deta = results["true_deta"]
    # Paper shape: oracles improve on the full pipeline, especially in the
    # tail; true-d-eta is the best condition.
    assert no_bkg.mean95 <= full.mean95 + 1.0
    assert true_deta.mean95 <= full.mean95 + 1.0
    assert true_deta.mean68 <= full.mean68 + 0.5
    assert true_deta.mean68 < no_bkg.mean68 + 0.5
