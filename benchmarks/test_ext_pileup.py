"""Extension — pile-up of simultaneous photons (paper Section VI).

The paper names "multiple events that arrive simultaneously to within the
detection latency of the instrument" as the next error source to study.
This bench builds events through a coincidence window and measures the
impact on localization as the window (i.e. the effective trigger latency)
grows: piled-up events mix hits from unrelated photons, producing rings
whose axes and energies are wrong.
"""

import numpy as np

from repro.detector.coincidence import CoincidenceConfig, build_events_with_pileup
from repro.detector.response import DetectorResponse
from repro.experiments.containment import containment
from repro.geometry.tiles import adapt_geometry
from repro.localization.pipeline import localize_baseline
from repro.sources.background import BackgroundModel
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource

WINDOWS_S = (5e-7, 5e-6, 2e-5)
N_TRIALS = 10


def test_ext_pileup(benchmark):
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)

    def study():
        out = {}
        for window in WINDOWS_S:
            errs = []
            fractions = []
            for i in range(N_TRIALS):
                rng = np.random.default_rng(4000 + i)
                grb = GRBSource(
                    fluence_mev_cm2=1.0,
                    azimuth_deg=float(rng.uniform(0, 360)),
                )
                exp = simulate_exposure(geometry, rng, grb, BackgroundModel())
                rebuilt = build_events_with_pileup(
                    exp.transport, exp.batch, CoincidenceConfig(window_s=window)
                )
                fractions.append(rebuilt.pileup_fraction)
                events = response.digitize(
                    rebuilt.transport, rebuilt.batch, rng, min_hits=2
                )
                outcome = localize_baseline(events, rng)
                errs.append(outcome.error_degrees(grb.source_direction))
            out[window] = (np.array(errs), float(np.mean(fractions)))
        return out

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    print("\nExtension — pile-up vs coincidence window (1 MeV/cm^2)")
    for window, (errs, frac) in results.items():
        print(
            f"  window={window:7.0e} s: pileup fraction={frac:5.1%}  "
            f"68%={containment(errs, 0.68):6.2f} deg  "
            f"95%={containment(errs, 0.95):6.2f} deg"
        )

    fracs = [results[w][1] for w in WINDOWS_S]
    # Pile-up probability grows with the window.
    assert fracs[0] < fracs[-1]
    # At sub-microsecond windows (the realistic regime) pile-up is rare
    # and localization keeps working (tail failures aside).
    assert fracs[0] < 0.05
    assert containment(results[WINDOWS_S[0]][0], 0.68) < 12.0
