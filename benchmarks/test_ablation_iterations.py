"""Ablation — accuracy vs number of background-rejection iterations.

The paper fixes the Fig. 6 loop at five iterations and notes the scheme is
*anytime*: halting early trades accuracy for latency.  This bench sweeps
``halt_after`` in {1, 3, 5} at 1 MeV/cm^2, normal incidence, and also
reports the platform-model latency of each setting, quantifying that
trade-off.
"""

import numpy as np

from repro.detector.response import DetectorResponse
from repro.experiments.containment import containment
from repro.experiments.trials import TrialConfig, run_trials
from repro.geometry.tiles import adapt_geometry
from repro.platforms.platforms import ATOM


def test_ablation_iterations(benchmark, scale, trained_models):
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)

    def sweep():
        out = {}
        for halt in (1, 3, 5):
            errs = run_trials(
                geometry,
                response,
                seed=scale.seed + halt,
                n_trials=scale.n_trials,
                config=TrialConfig(condition="ml", halt_after=halt),
                ml_pipeline=trained_models.pipeline,
            )
            out[halt] = errs
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation — anytime iteration count (1 MeV/cm^2, polar 0)")
    atom = ATOM.predict()
    for halt, errs in results.items():
        latency = atom.total_mean(iterations=halt)
        print(
            f"  halt_after={halt}: 68%={containment(errs, 0.68):6.2f} deg  "
            f"95%={containment(errs, 0.95):6.2f} deg  "
            f"Atom latency={latency:6.1f} ms"
        )

    # More iterations never cost accuracy on average, and latency grows
    # linearly per the platform model.
    c5 = containment(results[5], 0.95)
    c1 = containment(results[1], 0.95)
    assert c5 <= c1 + 5.0
    assert atom.total_mean(iterations=5) > atom.total_mean(iterations=1)
