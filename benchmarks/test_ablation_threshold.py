"""Ablation — per-polar-bin vs single global classifier threshold.

The paper selects a separate background-probability threshold for every
ten-degree polar bin.  This bench quantifies what that buys over one
global threshold: weighted classification loss (fp + 1.5 fn) on held-out
rings, per bin and pooled.
"""

import numpy as np

from repro.models.thresholds import PolarBinnedThresholds
from repro.sources.grb import LABEL_BACKGROUND


def test_ablation_threshold(benchmark, trained_models):
    data = trained_models.data
    labels = data.labels == LABEL_BACKGROUND
    net = trained_models.background_net

    def evaluate():
        prob = net.predict_proba(data.features)
        per_bin = PolarBinnedThresholds().fit(
            prob, labels, data.polar_true, fn_weight=1.5
        )
        glob = PolarBinnedThresholds().fit(
            prob, labels, np.zeros_like(data.polar_true), fn_weight=1.5
        )

        def loss(table):
            calls = table.classify(prob, data.polar_true)
            fp = int((calls & ~labels).sum())
            fn = int((~calls & labels).sum())
            return fp + 1.5 * fn

        return loss(per_bin), loss(glob), per_bin

    per_bin_loss, global_loss, table = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )

    print("\nAblation — threshold selection strategy")
    print(f"  per-bin thresholds: weighted loss = {per_bin_loss:.0f}")
    print(f"  global threshold:   weighted loss = {global_loss:.0f}")
    print(f"  per-bin values: {np.round(table.thresholds, 3)}")

    # Per-bin selection can only improve the training-loss objective.
    assert per_bin_loss <= global_loss + 1e-9
