"""Ablation — analytic escape-energy recovery vs the learned dEta fix.

The textbook remedy for incompletely absorbed photons is three-Compton
energy recovery (Boggs & Jean 2000): for >= 3-hit events, the geometric
scatter angle at hit 2 fixes the photon energy after the second
interaction, recovering whatever later escaped.  On noiseless events the
estimator is exact (see tests/reconstruction/test_escape.py).

This ablation asks whether it helps on *realistic* digitized events — and
finds that it does not: with measured positions/energies the estimator
fires mostly on measurement fluctuations (no real escape), while truly
escaped events are missed because hit ordering is itself inferred from
the (deficient) calorimetric energies and systematically hides the
escape.  The result is a quantified argument for the paper's design: fix
mis-estimated rings with a *learned* per-ring uncertainty (the dEta
network) rather than an analytic energy correction.
"""

import numpy as np

from repro.detector.response import DetectorResponse
from repro.geometry.tiles import adapt_geometry
from repro.physics.compton import cos_theta_from_energies
from repro.reconstruction.escape import estimate_escape_energy
from repro.reconstruction.ordering import order_hits
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource

N_EXPOSURES = 6


def test_ablation_escape(benchmark):
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)

    def study():
        rows = []
        for i in range(N_EXPOSURES):
            rng = np.random.default_rng(7000 + i)
            grb = GRBSource(
                fluence_mev_cm2=2.0, azimuth_deg=float(rng.uniform(0, 360))
            )
            exp = simulate_exposure(geometry, rng, grb)
            events = response.digitize(
                exp.transport, exp.batch, rng, min_hits=3
            )
            ordering = order_hits(events)
            est = estimate_escape_energy(events, ordering)
            sel = est.applicable & ordering.valid
            idx = np.nonzero(sel)[0]
            if idx.size == 0:
                continue
            first = ordering.first[idx]
            second = ordering.second[idx]
            axis = events.positions[first] - events.positions[second]
            axis /= np.linalg.norm(axis, axis=1, keepdims=True)
            eta_true = axis @ grb.source_direction
            seg = np.repeat(
                np.arange(events.num_events), events.hits_per_event()
            )
            etot = np.zeros(events.num_events)
            np.add.at(etot, seg, events.energies)
            eta_base = cos_theta_from_energies(
                etot[idx], events.energies[first]
            )
            eta_corr = cos_theta_from_energies(
                np.maximum(est.energy[idx], etot[idx]),
                events.energies[first],
            )
            gain = est.energy[idx] - etot[idx]
            true_missing = events.photon_energy[idx] - etot[idx]
            rows.append(
                np.column_stack(
                    [
                        gain,
                        true_missing,
                        np.abs(eta_base - eta_true),
                        np.abs(eta_corr - eta_true),
                    ]
                )
            )
        return np.concatenate(rows, axis=0)

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    gain, true_missing, err_base, err_corr = rows.T
    fired = gain > 0.02
    truly_escaped = true_missing > 0.2

    print("\nAblation — analytic escape recovery on realistic events")
    print(f"  eligible >=3-hit rings          : {rows.shape[0]}")
    print(f"  estimator fired (gain > 20 keV) : {int(fired.sum())}")
    print(f"    of which truly escaped        : "
          f"{int((fired & truly_escaped).sum())}")
    print(f"  median |eta err| where fired    : base "
          f"{np.median(err_base[fired]):.4f} -> corrected "
          f"{np.median(err_corr[fired]):.4f}")
    print(f"  truly escaped events caught     : "
          f"{int((fired & truly_escaped).sum())}/{int(truly_escaped.sum())}")

    # The negative result this ablation documents:
    # 1. most firings are false positives (no real escape), and
    assert (fired & ~truly_escaped).sum() > (fired & truly_escaped).sum()
    # 2. the correction does not improve the fired population's median.
    assert np.median(err_corr[fired]) >= np.median(err_base[fired]) * 0.9
    # 3. the estimator misses the majority of real escapes.
    assert (fired & truly_escaped).sum() < 0.5 * truly_escaped.sum()
