"""Extension — broader quantization strategies (paper Section VI).

The paper's quantization study is per-tensor INT8 QAT; its future work
names "a broader range of quantization strategies."  This bench compares
four on the real background-classification task: QAT INT8 (the paper's),
PTQ INT8 per-tensor, PTQ INT8 per-channel, and PTQ with INT4 weights —
reporting ROC AUC, agreement with FP32 decisions, and weight storage.
"""

import numpy as np

from repro.models.background import BackgroundTrainConfig, train_background_net
from repro.models.quantized import quantize_background_net
from repro.nn.metrics import roc_auc
from repro.quantization.fuse import fuse_linear_bn_relu
from repro.quantization.strategies import (
    post_training_quantize,
    weight_storage_bytes,
)
from repro.sources.grb import LABEL_BACKGROUND


def test_ext_quant_strategies(benchmark, trained_models):
    data = trained_models.data
    labels = (data.labels == LABEL_BACKGROUND).astype(float)
    rng = np.random.default_rng(9)

    swapped = train_background_net(
        data.features, labels, data.polar_true, rng,
        config=BackgroundTrainConfig(max_epochs=25, patience=8, swapped=True),
    )
    x_scaled = swapped.scaler.transform(data.features)
    fused = fuse_linear_bn_relu(swapped.model)
    fp_prob = swapped.predict_proba(data.features)
    fp_calls = fp_prob >= 0.5

    def build_all():
        qat = quantize_background_net(
            swapped, data.features, labels, data.polar_true,
            np.random.default_rng(10), qat_epochs=3,
        )
        return {
            "QAT int8 (paper)": (qat.model, qat.predict_proba(data.features)),
            "PTQ int8/tensor": _ptq(per_channel=False, bits=8),
            "PTQ int8/channel": _ptq(per_channel=True, bits=8),
            "PTQ int4 weights": _ptq(per_channel=True, bits=4),
        }

    def _ptq(per_channel, bits):
        engine = post_training_quantize(
            fused, x_scaled, per_channel=per_channel, weight_bits=bits
        )
        logit = np.clip(engine.predict_logit(x_scaled), -60, 60)
        return engine, 1.0 / (1.0 + np.exp(-logit))

    results = benchmark.pedantic(build_all, rounds=1, iterations=1)

    auc_fp = roc_auc(fp_prob, labels)
    print("\nExtension — quantization strategies on the background net")
    print(f"  {'strategy':18s} {'AUC':>6s} {'agree':>7s} {'weights':>9s}")
    print(f"  {'FP32 reference':18s} {auc_fp:6.3f} {'100.0%':>7s} "
          f"{4 * results['QAT int8 (paper)'][0].weight_bytes:8d}B")
    aucs = {}
    for name, (engine, prob) in results.items():
        auc = roc_auc(prob, labels)
        agree = ((prob >= 0.5) == fp_calls).mean()
        bits = 4 if "int4" in name else 8
        storage = weight_storage_bytes(engine, bits)
        print(f"  {name:18s} {auc:6.3f} {agree:6.1%} {storage:8.0f}B")
        aucs[name] = auc

    # Every 8-bit strategy stays within a few AUC points of FP32.
    for name in ("QAT int8 (paper)", "PTQ int8/tensor", "PTQ int8/channel"):
        assert aucs[name] > auc_fp - 0.03
    # INT4 weights degrade more but remain useful.
    assert aucs["PTQ int4 weights"] > auc_fp - 0.10
