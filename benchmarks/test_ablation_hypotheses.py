"""Ablation — multi-hypothesis iteration (this reproduction's key design
choice).

Classification given a wrong direction estimate is self-reinforcing (see
repro.pipeline.ml_pipeline), so this implementation runs the Fig. 6
iteration from several seed basins and keeps the best-scoring result.
This bench quantifies what that buys: 95% containment with 1 vs 3
hypotheses at 1 MeV/cm² (where the baseline's tail failures live).
"""

import numpy as np

from repro.detector.response import DetectorResponse
from repro.experiments.containment import containment
from repro.experiments.trials import TrialConfig, run_trials
from repro.geometry.tiles import adapt_geometry
from repro.pipeline.ml_pipeline import MLPipeline, MLPipelineConfig

N_TRIALS = 25


def test_ablation_hypotheses(benchmark, trained_models):
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)

    def sweep():
        out = {}
        for n_hyp in (1, 3):
            pipeline = MLPipeline(
                background_net=trained_models.background_net,
                deta_net=trained_models.deta_net,
                config=MLPipelineConfig(num_hypotheses=n_hyp),
            )
            out[n_hyp] = run_trials(
                geometry,
                response,
                seed=4242,
                n_trials=N_TRIALS,
                config=TrialConfig(condition="ml"),
                ml_pipeline=pipeline,
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation — iteration hypotheses (1 MeV/cm^2, polar 0)")
    for n_hyp, errs in results.items():
        print(
            f"  hypotheses={n_hyp}: 68%={containment(errs, 0.68):6.2f} deg  "
            f"95%={containment(errs, 0.95):6.2f} deg  "
            f"failures>10deg={int((errs > 10).sum())}/{N_TRIALS}"
        )

    # Multi-hypothesis never loses in the tail (same seeds).
    assert containment(results[3], 0.95) <= containment(results[1], 0.95) + 1.0
