"""Figure 8 — localization accuracy vs polar angle, with and without NN.

Paper shape: the NN pipeline consistently improves accuracy across the
0-80 degree sweep, especially at 95% containment; with the networks, a
1 MeV/cm^2 burst localizes within ~6 degrees at 68% containment at every
angle.
"""

import numpy as np

from repro.experiments.figures import figure8, print_figure8


def test_fig8_polar_sweep(benchmark, scale, trained_models):
    results = benchmark.pedantic(
        lambda: figure8(scale, trained_models), rounds=1, iterations=1
    )
    print_figure8(results)

    angles = sorted(results)
    base95 = np.array([results[a]["baseline"].mean95 for a in angles])
    ml95 = np.array([results[a]["ml"].mean95 for a in angles])
    ml68 = np.array([results[a]["ml"].mean68 for a in angles])
    # NN pipeline wins in the tail on average across the sweep.
    assert ml95.mean() <= base95.mean() + 0.5
    # The paper's headline: <= ~6 degrees at 68% for 1 MeV/cm^2 at every
    # angle (our simulator is cleaner; allow the paper's bound).
    assert np.all(ml68 <= 6.0)
