"""Pytest root conftest: make the in-tree package importable without install.

Mirrors an editable install for environments where `pip install -e .` is
unavailable (e.g. offline, no `wheel`).  If `repro` is already installed,
the installed copy wins only if it precedes `src` on sys.path; inserting at
position 0 keeps the in-tree sources authoritative for the test suite.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
