"""Full workflow: train the paper's two networks, then localize with them.

Reproduces the paper's core loop end to end:

1. run a (scaled-down) training campaign over polar angles 0-80 degrees,
   collecting Compton rings with truth labels and true d-eta errors;
2. train the background-rejection classifier and the dEta regressor;
3. run the iterative Fig. 6 ML pipeline on fresh simulated bursts and
   compare against the baseline pipeline.

Run:  python examples/train_and_localize.py          (~3 minutes)
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.detector import DetectorResponse
from repro.experiments.modelzoo import train_models
from repro.experiments.trials import TrialConfig, run_trials
from repro.experiments.containment import containment
from repro.geometry import adapt_geometry
from repro.nn import r2_score, roc_auc
from repro.sources.grb import LABEL_BACKGROUND


def main() -> None:
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)

    print("1. Training campaign + network training (paper Section III) ...")
    t0 = time.time()
    models = train_models(geometry, response, seed=2024, exposures_per_angle=12)
    data = models.data
    print(f"   collected {data.num_rings} rings "
          f"({(data.labels == LABEL_BACKGROUND).mean():.0%} background), "
          f"trained both networks in {time.time() - t0:.0f} s")

    labels = (data.labels == LABEL_BACKGROUND).astype(float)
    auc = roc_auc(models.background_net.predict_proba(data.features), labels)
    grb = data.grb_only()
    target = np.log(np.maximum(grb.true_eta_errors, 1e-4))
    r2_net = r2_score(models.deta_net.predict_log_deta(grb.features), target)
    r2_prop = r2_score(np.log(grb.prop_deta), target)
    print(f"   background net ROC AUC          : {auc:.3f}")
    print(f"   dEta net R^2 on ln(true error)  : {r2_net:.3f}")
    print(f"   propagation-of-error R^2        : {r2_prop:.3f}  <- the paper's"
          " broken estimate")

    print("\n2. Localization trials at 1 MeV/cm^2, polar 0 (paper Fig. 8) ...")
    n_trials = 25
    base = run_trials(
        geometry, response, seed=7, n_trials=n_trials,
        config=TrialConfig(condition="baseline"),
    )
    ml = run_trials(
        geometry, response, seed=7, n_trials=n_trials,
        config=TrialConfig(condition="ml"), ml_pipeline=models.pipeline,
    )
    print(f"   baseline : 68% = {containment(base, 0.68):6.2f} deg   "
          f"95% = {containment(base, 0.95):6.2f} deg")
    print(f"   with NNs : 68% = {containment(ml, 0.68):6.2f} deg   "
          f"95% = {containment(ml, 0.95):6.2f} deg")
    print("\nThe networks should leave the 68% containment similar while"
          "\ncollapsing the 95% tail — the paper's headline result.")


if __name__ == "__main__":
    main()
