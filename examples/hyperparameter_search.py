"""Hyperparameter search over the paper's sweep space.

The paper tunes batch size, learning rate, FC-layer count, maximum layer
width, and the width profile via Weights & Biases.  This offline harness
samples the same space with random search and reports the leaderboard for
the background-classification task on freshly simulated rings.

Run:  python examples/hyperparameter_search.py       (~3 minutes)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.detector import DetectorResponse
from repro.experiments.datasets import generate_training_rings
from repro.geometry import adapt_geometry
from repro.models.hyperparam import random_search
from repro.sources.grb import LABEL_BACKGROUND


def main() -> None:
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    print("Generating training rings (3 polar angles, small campaign) ...")
    data = generate_training_rings(
        geometry,
        response,
        seed=11,
        polar_angles_deg=np.array([0.0, 40.0, 80.0]),
        exposures_per_angle=6,
    )
    labels = (data.labels == LABEL_BACKGROUND).astype(float)
    print(f"  {data.num_rings} rings")

    print("\nRandom search, 8 configurations x 10 epochs each ...")
    results = random_search(
        data.features,
        labels,
        np.random.default_rng(1),
        task="classification",
        n_trials=8,
        max_epochs=10,
    )

    print(f"\n{'rank':>4s} {'val loss':>9s} {'batch':>6s} {'lr':>9s}  widths")
    for rank, cfg in enumerate(results, 1):
        print(f"{rank:4d} {cfg.val_loss:9.4f} {cfg.batch_size:6d} "
              f"{cfg.learning_rate:9.2e}  {cfg.hidden_widths}")

    best = results[0]
    print(f"\nBest: widths={best.hidden_widths}, lr={best.learning_rate:.2e}, "
          f"batch={best.batch_size}")
    print("The paper's tuned background net (4 FC layers, 256 max width,"
          "\ndecreasing profile) should land near the top of this space.")


if __name__ == "__main__":
    main()
