"""Instrument study: where do the heavy energy-error tails come from?

The paper's dEta network exists because propagated uncertainties miss a
heavy-tailed error population.  The default response model injects that
tail with an ad-hoc probability; this study swaps in the *mechanistic*
SiPM model (optical-crosstalk branching cascade + afterpulsing +
saturation) and shows the same pathology emerging from device physics:
the fraction of hits with |error| > 3 sigma_nominal far exceeds the
Gaussian expectation, and grows with the crosstalk probability.

Run:  python examples/sipm_noise_study.py            (~1 minute)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.detector.response import DetectorResponse, ResponseConfig
from repro.detector.sipm import SiPMModel
from repro.geometry import adapt_geometry
from repro.localization.pipeline import prepare_rings
from repro.sources import GRBSource, simulate_exposure


def tail_stats(geometry, config, seed=0):
    response = DetectorResponse(geometry, config)
    rng = np.random.default_rng(seed)
    exposure = simulate_exposure(geometry, rng, GRBSource(fluence_mev_cm2=3.0))
    events = response.digitize(exposure.transport, exposure.batch, rng,
                               min_hits=2)
    err = np.abs(events.energies - events.true_energies)
    beyond3 = (err > 3 * events.sigma_energy).mean()
    rings = prepare_rings(events)
    eta_err = rings.true_eta_errors()
    under = (eta_err > 2 * rings.deta).mean()
    return beyond3, under, events.num_hits


def main() -> None:
    geometry = adapt_geometry()
    print(f"{'response model':>34s} {'hits>3sig':>10s} "
          f"{'rings etaerr>2deta':>19s}")

    configs = [
        ("Poisson only (no tails)",
         ResponseConfig(tail_probability=0.0)),
        ("ad-hoc tail (paper-default sim)",
         ResponseConfig()),
        ("SiPM, crosstalk 10%",
         ResponseConfig(tail_probability=0.0,
                        sipm=SiPMModel(p_crosstalk=0.10))),
        ("SiPM, crosstalk 25%",
         ResponseConfig(tail_probability=0.0,
                        sipm=SiPMModel(p_crosstalk=0.25))),
        ("SiPM, crosstalk 40%",
         ResponseConfig(tail_probability=0.0,
                        sipm=SiPMModel(p_crosstalk=0.40))),
    ]
    for name, cfg in configs:
        beyond3, under, _ = tail_stats(geometry, cfg)
        print(f"{name:>34s} {beyond3:10.1%} {under:19.1%}")

    print("\nGaussian expectation for the >3-sigma column is 0.3%."
          "\nCrosstalk alone regenerates the heavy-tail population the"
          "\ndEta network is trained to flag — no ad-hoc knob needed.")


if __name__ == "__main__":
    main()
