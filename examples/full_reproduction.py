"""One-command mini-reproduction of every paper artifact.

Runs a reduced-statistics version of each figure and table (Figs. 4,
7-11; Tables I-III), prints the same rows the paper reports, and writes
machine-readable JSON records to ``reproduction_results/``.  For
publication-grade statistics use the benchmark suite with
``REPRO_BENCH_SCALE``.

Run:  python examples/full_reproduction.py           (~15-25 minutes)
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.figures import (
    ExperimentScale,
    figure4,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    print_figure4,
    print_figure7,
    print_figure8,
    print_figure9,
    print_figure10,
    print_figure11,
    print_table3,
    print_timing_table,
    table3,
)
from repro.experiments.modelzoo import get_or_train_pipeline
from repro.experiments.report import ExperimentRecord
from repro.platforms.platforms import ATOM, RPI3B_PLUS

OUT_DIR = Path("reproduction_results")


def _containment_payload(results) -> dict:
    return {
        str(key): {
            name: {
                "mean68": point.mean68,
                "std68": point.std68,
                "mean95": point.mean95,
                "std95": point.std95,
            }
            for name, point in conditions.items()
        }
        for key, conditions in results.items()
    }


def main() -> None:
    scale = ExperimentScale(n_trials=15, n_meta=2,
                            polar_angles=(0.0, 40.0, 80.0))
    t_start = time.time()

    print("Training / loading models (cached across runs) ...")
    models = get_or_train_pipeline()
    records: list[ExperimentRecord] = []

    print("\n=== Figure 4 ===")
    r4 = figure4(scale)
    print_figure4(r4)
    records.append(ExperimentRecord(
        "fig4", {"n_trials": scale.n_trials},
        {k: vars(v) for k, v in r4.items()},
    ))

    print("\n=== Figure 8 ===")
    r8 = figure8(scale, models)
    print_figure8(r8)
    records.append(ExperimentRecord(
        "fig8", {"angles": list(scale.polar_angles)}, _containment_payload(r8)
    ))

    print("\n=== Figure 9 ===")
    r9 = figure9(scale, models)
    print_figure9(r9)
    records.append(ExperimentRecord(
        "fig9", {"fluences": list(scale.fluences)}, _containment_payload(r9)
    ))

    print("\n=== Figure 10 ===")
    r10 = figure10(scale, models)
    print_figure10(r10)
    records.append(ExperimentRecord("fig10", {}, _containment_payload(r10)))

    print("\n=== Figure 7 ===")
    r7 = figure7(scale)
    print_figure7(r7)
    records.append(ExperimentRecord("fig7", {}, _containment_payload(r7)))

    print("\n=== Figure 11 ===")
    r11 = figure11(scale)
    print_figure11(r11)
    records.append(ExperimentRecord("fig11", {}, _containment_payload(r11)))

    print("\n=== Tables I & II ===")
    print_timing_table(RPI3B_PLUS)
    print_timing_table(ATOM)
    for name, platform in [("table1", RPI3B_PLUS), ("table2", ATOM)]:
        times = platform.predict()
        records.append(ExperimentRecord(
            name,
            {"platform": platform.name},
            {
                "mean_ms": times.mean_ms,
                "total_ms": times.total_mean(),
            },
        ))

    print("\n=== Table III ===")
    reports = table3()
    print_table3(reports)
    records.append(ExperimentRecord(
        "table3",
        {},
        {
            dtype: {
                "ii_cycles": r.ii_cycles,
                "latency_cycles": r.latency_cycles,
                "bram": r.bram,
                "dsp": r.dsp,
                "ff": r.ff,
                "lut": r.lut,
                "ms_597": r.batch_latency_ms(597),
            }
            for dtype, r in reports.items()
        },
    ))

    for rec in records:
        rec.save(OUT_DIR / f"{rec.experiment}.json")
    print(f"\nDone in {(time.time() - t_start) / 60:.1f} min; "
          f"{len(records)} records written to {OUT_DIR}/")


if __name__ == "__main__":
    main()
