"""Future-work scenario: the full APT instrument (paper Section VI).

Runs the same pipeline on the full APT geometry — ~25x the aperture,
~5x the scintillator depth, flying above the atmosphere at L2 — and
compares dim-burst localization against the balloon demonstrator,
including the sky-map credible-region area a follow-up telescope would
receive in the alert.

Run:  python examples/apt_full_instrument.py         (~2 minutes)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.detector.response import DetectorResponse, ResponseConfig
from repro.geometry.tiles import adapt_geometry, apt_geometry
from repro.localization.pipeline import localize_baseline, prepare_rings
from repro.localization.skymap import SkyGrid, compute_skymap
from repro.sources.background import BackgroundModel
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource

FLUENCE = 0.1  # MeV/cm^2 — "even dim (< 0.1 MeV/cm^2) GRBs"
N_TRIALS = 10


def run(name, geometry, response, background, seed0):
    errs, areas, ring_counts = [], [], []
    grid = SkyGrid.build(resolution_deg=1.0)
    for i in range(N_TRIALS):
        rng = np.random.default_rng(seed0 + i)
        grb = GRBSource(
            fluence_mev_cm2=FLUENCE,
            polar_angle_deg=20.0,
            azimuth_deg=float(rng.uniform(0, 360)),
        )
        exposure = simulate_exposure(geometry, rng, grb, background)
        events = response.digitize(
            exposure.transport, exposure.batch, rng, min_hits=2
        )
        rings = prepare_rings(events)
        ring_counts.append(rings.num_rings)
        outcome = localize_baseline(events, rng)
        errs.append(outcome.error_degrees(grb.source_direction))
        if rings.num_rings:
            areas.append(compute_skymap(rings, grid).credible_region_area_deg2(0.68))
    print(f"  {name:6s}: rings/burst={np.mean(ring_counts):6.0f}   "
          f"median err={np.median(errs):6.2f} deg   "
          f"68% credible area={np.median(areas):8.1f} deg^2")
    return np.median(errs)


def main() -> None:
    print(f"Localizing a {FLUENCE} MeV/cm^2 burst "
          f"({N_TRIALS} trials per instrument):\n")
    adapt = adapt_geometry()
    apt = apt_geometry()
    apt_response = DetectorResponse(
        apt,
        ResponseConfig(
            pe_per_mev=2000.0, tail_probability=0.05,
            nonuniformity_amplitude=0.03,
        ),
    )
    err_adapt = run("ADAPT", adapt, DetectorResponse(adapt),
                    BackgroundModel(), 100)
    err_apt = run("APT", apt, apt_response,
                  BackgroundModel(flux_per_cm2_s=1.0, cos_polar_min=0.0), 200)

    print(f"\nAPT improves dim-burst localization by "
          f"{err_adapt / max(err_apt, 1e-6):.0f}x, approaching the paper's"
          f"\nSection-VI prediction of degree-scale accuracy below"
          f" 0.1 MeV/cm^2.")


if __name__ == "__main__":
    main()
