"""Quickstart: simulate one GRB observation and localize it.

Simulates a 1-second exposure of the ADAPT detector to a 1 MeV/cm^2
gamma-ray burst plus atmospheric background, digitizes the interactions
through the detector-response model, reconstructs Compton rings, and runs
the baseline localization pipeline — then shows what the paper's two
oracle conditions (background removal, true d-eta) would buy.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.detector import DetectorResponse
from repro.geometry import adapt_geometry
from repro.localization import localize_baseline
from repro.sources import BackgroundModel, GRBSource, simulate_exposure
from repro.sources.grb import LABEL_GRB


def main() -> None:
    rng = np.random.default_rng(42)
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)

    grb = GRBSource(fluence_mev_cm2=1.0, polar_angle_deg=25.0, azimuth_deg=130.0)
    print(f"Simulating a {grb.fluence_mev_cm2} MeV/cm^2 GRB at polar angle "
          f"{grb.polar_angle_deg} deg plus atmospheric background ...")

    exposure = simulate_exposure(geometry, rng, grb, BackgroundModel())
    print(f"  primary photons : {exposure.batch.num_photons}")
    print(f"  detector hits   : {exposure.transport.num_hits}")

    events = response.digitize(exposure.transport, exposure.batch, rng, min_hits=2)
    print(f"  multi-hit events: {events.num_events}")

    outcome = localize_baseline(events, rng)
    n_grb = int((outcome.rings.labels == LABEL_GRB).sum())
    n_bkg = outcome.rings.num_rings - n_grb
    print(f"  rings entering localization: {outcome.rings.num_rings} "
          f"({n_grb} GRB, {n_bkg} background)")

    err = outcome.error_degrees(grb.source_direction)
    print(f"\nBaseline localization error: {err:.2f} deg "
          f"({outcome.iterations} refinement iterations)")

    for name, kwargs in [
        ("background-removal oracle", dict(drop_background=True)),
        ("true-dEta oracle", dict(true_deta=True)),
    ]:
        oracle = localize_baseline(events, np.random.default_rng(42), **kwargs)
        print(f"{name:28s}: {oracle.error_degrees(grb.source_direction):.2f} deg")

    print("\nThe gap between the baseline and the oracles is exactly what the"
          "\npaper's two neural networks recover — see"
          " examples/train_and_localize.py.")


if __name__ == "__main__":
    main()
