"""Instrument study: ghost hits from the orthogonal-fiber readout.

ADAPT resolves hit positions by overlaying independent x- and y-fiber
projections (paper Fig. 1).  When two interactions land in the same
layer, the projections admit two pairings — the wrong one puts hits at
the two *ghost* crossings.  Energy matching breaks most ties, but equal-
energy deposits remain ambiguous.  This study measures the ghost rate as
a function of the energy asymmetry between two same-layer deposits —
another mechanism (alongside mis-ordering and response tails) behind
rings whose true error exceeds the propagated estimate.

Run:  python examples/ghost_hit_study.py             (~30 seconds)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.detector.fiber_readout import FiberReadoutConfig, readout_layer

N_TRIALS = 300


def ghost_rate(energy_ratio: float, rng: np.random.Generator) -> float:
    """Fraction of 2-hit layers with at least one mis-paired hit."""
    config = FiberReadoutConfig(fiber_noise_pe=0.004)
    ghosts = 0
    for _ in range(N_TRIALS):
        positions = rng.uniform(-15.0, 15.0, size=(2, 2))
        # Keep the two deposits separated in both projections, so the
        # ambiguity is purely a pairing problem.
        positions[1] = positions[0] + np.sign(
            rng.standard_normal(2)
        ) * rng.uniform(5.0, 12.0, 2)
        e0 = 0.4
        energies = np.array([e0, e0 * energy_ratio])
        result = readout_layer(positions, energies, config, rng)
        # Apply the downstream trigger cut: noise-cluster pairings below
        # 50 keV never reach reconstruction.
        significant = result.energies > 0.05
        if result.is_ghost[significant].any():
            ghosts += 1
    return ghosts / N_TRIALS


def main() -> None:
    rng = np.random.default_rng(0)
    print("Two same-layer deposits; ghost (mis-pairing) rate vs energy "
          "asymmetry:\n")
    print(f"{'E2/E1':>8s} {'ghost rate':>11s}")
    for ratio in (1.0, 1.2, 1.5, 2.0, 3.0, 5.0):
        rate = ghost_rate(ratio, rng)
        print(f"{ratio:8.1f} {rate:11.1%}")
    print("\nEqual-energy deposits are ambiguous for energy matching;"
          "\nasymmetric ones pair correctly.  Ghosted events feed the"
          "\nheavy-tail eta-error population the dEta network flags.")


if __name__ == "__main__":
    main()
