"""Follow-up alert scenario: hierarchical sky-map localization regions.

Simulates a burst, reconstructs its rings, and runs the coarse-to-fine
hierarchical sky search (`repro.localization.hierarchy`) to produce what
a follow-up telescope would receive in the alert: the best-fit
direction, the 68%/90% credible-region areas, whether the truth landed
inside the 90% region, and an ASCII rendering of the posterior with the
true source marked.  A flat dense scan at the same resolution is run
alongside to show the coarse-to-fine cost advantage.

Run:  python examples/skymap_alert.py                (~30 seconds)
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.detector import DetectorResponse
from repro.geometry import adapt_geometry
from repro.localization.hierarchy import SkymapConfig, hierarchical_skymap
from repro.localization.pipeline import prepare_rings
from repro.localization.skymap import SkyGrid, compute_skymap, render_ascii
from repro.models.features import polar_angle_of
from repro.sources import BackgroundModel, GRBSource, simulate_exposure
from repro.sources.grb import LABEL_GRB


def main() -> None:
    rng = np.random.default_rng(11)
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)

    grb = GRBSource(fluence_mev_cm2=2.0, polar_angle_deg=35.0, azimuth_deg=60.0)
    exposure = simulate_exposure(geometry, rng, grb, BackgroundModel())
    events = response.digitize(exposure.transport, exposure.batch, rng, min_hits=2)
    rings = prepare_rings(events)
    n_grb = int((rings.labels == LABEL_GRB).sum())

    # Alert-quality numbers: the oracle-width GRB rings (the upper bound
    # the dEta network approaches).  Temperature 2.5 is the value fitted
    # by `scripts/bench_report.py --skymap` so the 90% region is honest.
    grb_rings = rings.select(rings.labels == LABEL_GRB)
    grb_rings = grb_rings.with_deta(
        np.maximum(grb_rings.true_eta_errors(), 1e-3)
    )
    config = SkymapConfig(resolution_deg=0.25, temperature=2.5)

    t0 = time.perf_counter()
    hier = hierarchical_skymap(grb_rings, config)
    hier_s = time.perf_counter() - t0
    sky = hier.sky
    best = sky.best_direction()
    err = np.degrees(np.arccos(np.clip(best @ grb.source_direction, -1, 1)))

    # The same resolution by brute force, for the cost comparison.
    flat_grid = SkyGrid.build(config.resolution_deg, config.max_polar_deg)
    t0 = time.perf_counter()
    compute_skymap(grb_rings, flat_grid)
    flat_s = time.perf_counter() - t0

    print(f"Burst at polar {grb.polar_angle_deg} deg / azimuth "
          f"{grb.azimuth_deg} deg; {rings.num_rings} rings "
          f"({n_grb} GRB)\n")
    print(f"Best-fit direction : polar {polar_angle_of(best):.1f} deg, "
          f"error {err:.2f} deg")
    print(f"68% credible area  : "
          f"{sky.credible_region_area_deg2(0.68):8.2f} deg^2")
    print(f"90% credible area  : "
          f"{sky.credible_region_area_deg2(0.90):8.2f} deg^2")
    print(f"Truth inside 90%   : {sky.contains(grb.source_direction, 0.9)}")
    print(f"Search cost        : {hier.cells_evaluated} cells over "
          f"{hier.levels} levels in {hier_s * 1e3:.1f} ms "
          f"(dense scan: {flat_grid.num_pixels} pixels, "
          f"{flat_s * 1e3:.0f} ms -> {flat_s / hier_s:.0f}x)\n")

    # Visual: the raw-pipeline map (all rings, propagated widths, robust
    # cap), which is what localization actually sees before the networks.
    raw = compute_skymap(rings, SkyGrid.build(resolution_deg=2.0), cap=4.0)
    print("Raw likelihood sky map, all rings (view from zenith; "
          "X = true source):\n")
    print(render_ascii(raw, width=64, height=26, marker=grb.source_direction))


if __name__ == "__main__":
    main()
