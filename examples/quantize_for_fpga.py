"""Deployment scenario: quantize the background network for the FPGA.

Follows the paper's Section V end to end: retrain the background network
with the fusion-friendly (swapped) block order, fuse Linear+BatchNorm,
fine-tune with fake quantization (QAT), convert to a true INT8 integer
engine, verify classification quality survives, and estimate the FPGA
kernel's initiation interval, latency, and resources for both datatypes.

Run:  python examples/quantize_for_fpga.py           (~3 minutes)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.experiments.figures import print_table3, table3
from repro.experiments.modelzoo import get_or_train_pipeline
from repro.fpga.hls_model import PAPER_NUM_RINGS
from repro.models.quantized import quantize_background_net
from repro.nn import roc_auc
from repro.sources.grb import LABEL_BACKGROUND


def main() -> None:
    print("1. Training the swapped-order background network "
          "(Linear -> BN -> ReLU, fusible) ...")
    swapped = get_or_train_pipeline(swapped=True)
    data = swapped.data
    labels = (data.labels == LABEL_BACKGROUND).astype(float)

    print("2. Fuse + QAT fine-tune + convert to INT8 integer inference ...")
    rng = np.random.default_rng(0)
    int8_net = quantize_background_net(
        swapped.background_net, data.features, labels, data.polar_true, rng
    )

    auc_fp32 = roc_auc(swapped.background_net.predict_proba(data.features), labels)
    auc_int8 = roc_auc(int8_net.predict_proba(data.features), labels)
    print(f"   ROC AUC  FP32: {auc_fp32:.3f}   INT8: {auc_int8:.3f}")
    weights = int8_net.model.weight_bytes
    print(f"   INT8 weight storage: {weights} bytes "
          f"(FP32 would be {4 * weights})")

    print("\n3. FPGA dataflow-kernel estimates (Vitis HLS model, 10 ns clock):")
    reports = table3()
    print_table3(reports)
    r8, r32 = reports["int8"], reports["fp32"]
    print(f"\n   Throughput gain INT8/FP32: "
          f"{r8.throughput_per_second() / r32.throughput_per_second():.2f}x")
    print(f"   Batch of {PAPER_NUM_RINGS} rings: "
          f"{r8.batch_latency_ms(PAPER_NUM_RINGS):.2f} ms (INT8) vs "
          f"{r32.batch_latency_ms(PAPER_NUM_RINGS):.2f} ms (FP32)")


if __name__ == "__main__":
    main()
