"""Mission forecast: what fraction of short GRBs can ADAPT localize?

Samples bursts from a short-GRB population model (durations, spectra,
fluences, and sky positions drawn from Fermi-GBM-catalog-like
distributions — the paper's refs. [27]-[31]), observes each with the
full simulation chain, and reports the fraction localized to within the
paper's 6-degree follow-up target, as a function of fluence.

Run:  python examples/population_forecast.py         (~4 minutes)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.detector import DetectorResponse
from repro.geometry import adapt_geometry
from repro.localization import localize_baseline
from repro.sources import BackgroundModel, PopulationModel, simulate_exposure

N_BURSTS = 40
TARGET_DEG = 6.0


def main() -> None:
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    population = PopulationModel()
    rng = np.random.default_rng(2026)

    print(f"Observing {N_BURSTS} population-sampled short GRBs ...\n")
    rows = []
    for i in range(N_BURSTS):
        burst = population.sample_burst(rng)
        background = BackgroundModel(duration_s=max(burst.light_curve.duration_s, 0.1))
        exposure = simulate_exposure(geometry, rng, burst, background)
        events = response.digitize(
            exposure.transport, exposure.batch, rng, min_hits=2
        )
        outcome = localize_baseline(events, rng)
        err = outcome.error_degrees(burst.source_direction)
        rows.append((burst.fluence_mev_cm2, burst.polar_angle_deg, err))
    rows = np.array(rows)

    header_target = f"localized <{TARGET_DEG:.0f} deg"
    print(f"{'fluence bin':>16s} {'bursts':>7s} {header_target:>18s} "
          f"{'median err':>11s}")
    edges = [0.2, 0.5, 1.0, 2.0, 20.0]
    for lo, hi in zip(edges[:-1], edges[1:]):
        sel = (rows[:, 0] >= lo) & (rows[:, 0] < hi)
        if not sel.any():
            continue
        frac = (rows[sel, 2] <= TARGET_DEG).mean()
        print(f"{lo:7.1f} - {hi:5.1f}  {int(sel.sum()):7d} {frac:17.0%} "
              f"{np.median(rows[sel, 2]):10.1f}d")

    overall = (rows[:, 2] <= TARGET_DEG).mean()
    print(f"\nOverall: {overall:.0%} of the sampled population localized "
          f"within {TARGET_DEG:.0f} deg.")
    print("The paper's conclusion — reliable localization for bursts of"
          "\n'one to a few MeV/cm^2' — shows up as the jump between the"
          "\nsub-MeV and super-MeV fluence bins.")


if __name__ == "__main__":
    main()
