"""Science scenario: how dim a burst can ADAPT localize?

The paper motivates its networks with short, dim GRBs — binary neutron
star mergers whose afterglows need fast narrow-field follow-up.  This
campaign sweeps burst fluence and maps where the baseline pipeline loses
the source in the background while the ML pipeline keeps localizing: the
effective sensitivity floor of the instrument.

Run:  python examples/dim_burst_campaign.py          (~4 minutes)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.detector import DetectorResponse
from repro.experiments.containment import containment
from repro.experiments.modelzoo import get_or_train_pipeline
from repro.experiments.trials import TrialConfig, run_trials
from repro.geometry import adapt_geometry

FLUENCES = (0.5, 0.75, 1.0, 1.5, 2.0, 4.0)
N_TRIALS = 20


def main() -> None:
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    print("Loading / training the networks (cached after the first run) ...")
    models = get_or_train_pipeline()

    print(f"\n{'fluence':>8s}  {'baseline 68/95 (deg)':>22s}  "
          f"{'with NN 68/95 (deg)':>22s}")
    floors = {}
    for i, fluence in enumerate(FLUENCES):
        cfg = dict(fluence_mev_cm2=fluence, polar_angle_deg=0.0)
        base = run_trials(
            geometry, response, seed=100 + i, n_trials=N_TRIALS,
            config=TrialConfig(condition="baseline", **cfg),
        )
        ml = run_trials(
            geometry, response, seed=100 + i, n_trials=N_TRIALS,
            config=TrialConfig(condition="ml", **cfg),
            ml_pipeline=models.pipeline,
        )
        print(f"{fluence:8.2f}  "
              f"{containment(base, 0.68):9.1f}/{containment(base, 0.95):6.1f}  "
              f"{containment(ml, 0.68):13.1f}/{containment(ml, 0.95):6.1f}")
        floors[fluence] = (containment(base, 0.68), containment(ml, 0.68))

    # Sensitivity floor: dimmest fluence localized within 6 degrees (the
    # paper's 68% containment target) by each pipeline.
    def floor(col):
        ok = [f for f, v in floors.items() if v[col] <= 6.0]
        return min(ok) if ok else None

    print(f"\nDimmest burst localized to <= 6 deg (68%):")
    print(f"  baseline pipeline : {floor(0)} MeV/cm^2")
    print(f"  with neural nets  : {floor(1)} MeV/cm^2")


if __name__ == "__main__":
    main()
